//! The shared observability handle both engines record through.
//!
//! One [`Obs`] lives behind an `Arc` inside `QuantumDb` and moves into
//! `Core` on `into_shared()`, so the single-threaded and sharded engines
//! (and the WAL and solver beneath them) all record into the same
//! histograms and the same flight recorder. Recording is designed to cost
//! almost nothing when idle: a disabled handle is one relaxed load per
//! call, and an enabled one is a handful of atomic adds.
//!
//! Operations are bracketed by [`Obs::begin_op`] / [`Obs::finish_op`]
//! (the `execute_stmt` chokepoint in both engines). Between the brackets,
//! every [`Obs::phase`] call appends a child span to a thread-local
//! collector, so a finished operation carries its full span tree: the
//! statement root plus each timed phase with its start offset. The tree
//! is what the slow-op log retains and the JSONL trace sink exports.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::histogram::{HistSummary, Histogram};
use crate::ring::{EventRing, SpanEvent};
use crate::{now_ns, stmt_code, Outcome, Phase, PHASES, PHASE_COUNT};

/// How many slow operations the slow-op log retains (oldest evicted).
pub const SLOW_LOG_CAPACITY: usize = 64;

/// One timed phase inside an operation's span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanNode {
    /// Which phase ran.
    pub phase: Phase,
    /// Start offset from the operation's start, nanoseconds.
    pub start_ns: u64,
    /// Phase duration, nanoseconds.
    pub dur_ns: u64,
}

/// A retained over-threshold operation: the root span plus its phase
/// children — a full (depth-2) span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// Statement class (`Statement::kind()`).
    pub class: &'static str,
    /// Monotonic start timestamp ([`now_ns`]).
    pub ts_ns: u64,
    /// Transaction id, if the op produced/affected one (`u64::MAX` none).
    pub txn_id: u64,
    /// Total operation duration, nanoseconds.
    pub total_ns: u64,
    /// How the operation ended.
    pub outcome: Outcome,
    /// Timed phases in execution order.
    pub spans: Vec<SpanNode>,
}

/// Per-class and per-phase latency summaries — the payload of
/// `SHOW PROFILE` and the wire PROFILE frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Per-statement-class summaries, sorted by class name.
    pub classes: Vec<(String, HistSummary)>,
    /// Per-engine-phase summaries (only phases with observations).
    pub phases: Vec<(String, HistSummary)>,
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "class", "count", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"
        )?;
        let row = |f: &mut std::fmt::Formatter<'_>, name: &str, s: &HistSummary| {
            writeln!(
                f,
                "{:<24} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                name,
                s.count,
                HistSummary::us(s.p50_ns),
                HistSummary::us(s.p90_ns),
                HistSummary::us(s.p99_ns),
                HistSummary::us(s.p999_ns),
                HistSummary::us(s.max_ns),
            )
        };
        for (name, s) in &self.classes {
            row(f, name, s)?;
        }
        writeln!(f, "{:<24} --", "phase")?;
        for (name, s) in &self.phases {
            row(f, name, s)?;
        }
        Ok(())
    }
}

/// Token returned by [`Obs::begin_op`]; hand it back to
/// [`Obs::finish_op`] when the operation completes.
#[derive(Debug)]
pub struct OpToken {
    class: &'static str,
    start: Instant,
    ts_ns: u64,
    /// Recording was enabled at begin time.
    active: bool,
    /// This token owns the thread-local span collector (false when the op
    /// is nested inside another collected op).
    collecting: bool,
}

thread_local! {
    /// Span collector for the operation currently executing on this
    /// thread; `None` when no collected op is active.
    static OP_SPANS: std::cell::RefCell<Option<OpCtx>> = const { std::cell::RefCell::new(None) };
}

/// Thread-local per-op context: start anchor and collected child spans.
#[derive(Debug)]
struct OpCtx {
    start_ns: u64,
    txn_id: u64,
    spans: Vec<SpanNode>,
}

/// The observability layer: per-class and per-phase histograms, the
/// flight-recorder ring, the slow-op log and the optional JSONL trace
/// sink, all behind one lock-free-on-the-hot-path handle.
pub struct Obs {
    enabled: AtomicBool,
    phases: [Histogram; PHASE_COUNT],
    classes: Mutex<BTreeMap<&'static str, std::sync::Arc<Histogram>>>,
    ring: EventRing,
    slow_threshold_ns: AtomicU64,
    slow: Mutex<VecDeque<SlowOp>>,
    trace: Mutex<Option<Box<dyn Write + Send>>>,
    /// Test hook: artificial delay appended to every operation, so tests
    /// can force an op over the slow threshold deterministically.
    test_delay_ns: AtomicU64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("ring_pushed", &self.ring.pushed())
            .field(
                "slow_threshold_ns",
                &self.slow_threshold_ns.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Obs {
    /// A fresh, enabled handle with the default flight-recorder depth.
    pub fn new() -> Obs {
        Obs::with_ring_capacity(EventRing::DEFAULT_CAPACITY)
    }

    /// A fresh, enabled handle with an explicit ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Obs {
        Obs {
            enabled: AtomicBool::new(true),
            phases: std::array::from_fn(|_| Histogram::new()),
            classes: Mutex::new(BTreeMap::new()),
            ring: EventRing::new(capacity),
            slow_threshold_ns: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
            trace: Mutex::new(None),
            test_delay_ns: AtomicU64::new(0),
        }
    }

    /// Turn recording on or off (off: every record call is one relaxed
    /// load). Used by the bench overhead A/B.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the slow-op threshold (0 disables the slow-op log).
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_ns
            .store(us.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// Install (or clear) the JSONL trace sink; every finished operation
    /// is written as one line (see `docs/OBSERVABILITY.md`).
    pub fn set_trace(&self, sink: Option<Box<dyn Write + Send>>) {
        *lock(&self.trace) = sink;
    }

    /// Test hook: sleep this long at the end of every operation, forcing
    /// it over the slow threshold.
    pub fn set_test_delay_us(&self, us: u64) {
        self.test_delay_ns
            .store(us.saturating_mul(1_000), Ordering::Relaxed);
    }

    // ---- recording ------------------------------------------------------

    /// Begin an operation of the given statement class. Cheap when
    /// disabled; otherwise arms the thread-local span collector.
    pub fn begin_op(&self, class: &'static str) -> OpToken {
        let active = self.enabled();
        let ts_ns = if active { now_ns() } else { 0 };
        let mut collecting = false;
        if active {
            OP_SPANS.with(|cell| {
                let mut slot = cell.borrow_mut();
                if slot.is_none() {
                    *slot = Some(OpCtx {
                        start_ns: ts_ns,
                        txn_id: SpanEvent::NONE,
                        spans: Vec::with_capacity(8),
                    });
                    collecting = true;
                }
            });
        }
        OpToken {
            class,
            start: Instant::now(),
            ts_ns,
            active,
            collecting,
        }
    }

    /// Finish an operation: records the class histogram, pushes the root
    /// span into the flight recorder, promotes the span tree to the
    /// slow-op log when over threshold, and writes the JSONL trace line
    /// when a sink is installed.
    pub fn finish_op(&self, token: OpToken, outcome: Outcome, txn_id: Option<u64>) {
        let delay = self.test_delay_ns.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        if !token.active {
            return;
        }
        let dur_ns = u64::try_from(token.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ctx = if token.collecting {
            OP_SPANS.with(|cell| cell.borrow_mut().take())
        } else {
            None
        };
        let txn = txn_id
            .or_else(|| {
                ctx.as_ref()
                    .map(|c| c.txn_id)
                    .filter(|t| *t != SpanEvent::NONE)
            })
            .unwrap_or(SpanEvent::NONE);
        self.class_histogram(token.class).record(dur_ns);
        self.ring.push(SpanEvent {
            ts_ns: token.ts_ns,
            txn_id: txn,
            partition_id: SpanEvent::NONE,
            kind: stmt_code(token.class),
            outcome,
            dur_ns,
        });
        let spans = ctx.map(|c| c.spans).unwrap_or_default();
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        let slow = threshold > 0 && dur_ns >= threshold;
        let traced = {
            // Cheap peek: only render JSON when a sink is installed.
            lock(&self.trace).is_some()
        };
        if !slow && !traced {
            return;
        }
        let op = SlowOp {
            class: token.class,
            ts_ns: token.ts_ns,
            txn_id: txn,
            total_ns: dur_ns,
            outcome,
            spans,
        };
        if traced {
            let line = trace_line(&op);
            if let Some(sink) = lock(&self.trace).as_mut() {
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.flush();
            }
        }
        if slow {
            let mut log = lock(&self.slow);
            if log.len() >= SLOW_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(op);
        }
    }

    /// Record a timed engine phase. Always feeds the phase histogram;
    /// when an operation is being collected on this thread, also appends
    /// a child span and a flight-recorder event.
    pub fn phase(&self, phase: Phase, dur: Duration) {
        self.phase_at(phase, dur, SpanEvent::NONE);
    }

    /// [`Obs::phase`] with a partition id attached to the ring event.
    pub fn phase_at(&self, phase: Phase, dur: Duration, partition_id: u64) {
        if !self.enabled() {
            return;
        }
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        self.phases[phase as usize].record(dur_ns);
        OP_SPANS.with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                let end = now_ns();
                let start_ns = end.saturating_sub(dur_ns).saturating_sub(ctx.start_ns);
                ctx.spans.push(SpanNode {
                    phase,
                    start_ns,
                    dur_ns,
                });
                self.ring.push(SpanEvent {
                    ts_ns: end.saturating_sub(dur_ns),
                    txn_id: ctx.txn_id,
                    partition_id,
                    kind: phase as u8,
                    outcome: Outcome::Ok,
                    dur_ns,
                });
            }
        });
    }

    /// Run `f` and record its wall time as `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let t0 = Instant::now();
        let r = f();
        self.phase(phase, t0.elapsed());
        r
    }

    /// Tag the operation currently collected on this thread with a
    /// transaction id (picked up by subsequent ring events and the root).
    pub fn set_txn(&self, txn_id: u64) {
        if !self.enabled() {
            return;
        }
        OP_SPANS.with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                ctx.txn_id = txn_id;
            }
        });
    }

    // ---- reading --------------------------------------------------------

    /// The shared histogram for a statement class (created on first use).
    pub fn class_histogram(&self, class: &'static str) -> std::sync::Arc<Histogram> {
        let mut map = lock(&self.classes);
        map.entry(class).or_default().clone()
    }

    /// The histogram for an engine phase.
    pub fn phase_histogram(&self, phase: Phase) -> &Histogram {
        &self.phases[phase as usize]
    }

    /// Per-class and per-phase summaries. Classes are sorted by name;
    /// phases appear in `repr` order and only when they have observations.
    pub fn profile(&self) -> ProfileReport {
        let classes = lock(&self.classes)
            .iter()
            .map(|(name, h)| ((*name).to_string(), h.summary()))
            .collect();
        let phases = PHASES
            .iter()
            .filter_map(|p| {
                let s = self.phases[*p as usize].summary();
                (s.count > 0).then(|| (p.name().to_string(), s))
            })
            .collect();
        ProfileReport { classes, phases }
    }

    /// The most recent `limit` flight-recorder events, oldest first.
    pub fn events(&self, limit: usize) -> Vec<SpanEvent> {
        self.ring.recent(limit)
    }

    /// Flight-recorder capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Retained slow operations, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        lock(&self.slow).iter().cloned().collect()
    }

    /// Clear histograms, the slow-op log and (logically) the ring — used
    /// by `reset_metrics` so profiles restart alongside counters.
    pub fn reset(&self) {
        for h in &self.phases {
            h.reset();
        }
        for h in lock(&self.classes).values() {
            h.reset();
        }
        lock(&self.slow).clear();
    }
}

/// Minimal JSON string escaping (quotes, backslash, control bytes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one operation as a JSONL trace line (newline-terminated).
fn trace_line(op: &SlowOp) -> String {
    let mut line = format!(
        "{{\"ts_ns\":{},\"class\":\"{}\",\"txn\":{},\"outcome\":\"{}\",\"dur_ns\":{},\"spans\":[",
        op.ts_ns,
        escape_json(op.class),
        if op.txn_id == SpanEvent::NONE {
            -1i64
        } else {
            op.txn_id as i64
        },
        op.outcome.name(),
        op.total_ns,
    );
    for (i, s) in op.spans.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"phase\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
            s.phase.name(),
            s.start_ns,
            s.dur_ns
        ));
    }
    line.push_str("]}\n");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` sink tests can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn op_bracketing_records_class_and_phase_histograms() {
        let obs = Obs::new();
        let token = obs.begin_op("SELECT");
        obs.phase(Phase::Parse, Duration::from_micros(3));
        obs.phase(Phase::WorldEnum, Duration::from_micros(7));
        obs.finish_op(token, Outcome::Ok, None);
        let report = obs.profile();
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].0, "SELECT");
        assert_eq!(report.classes[0].1.count, 1);
        let phases: Vec<&str> = report.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(phases, vec!["parse", "world_enum"]);
        // Root + two phase events in the flight recorder.
        let events = obs.events(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].kind, stmt_code("SELECT"));
        assert_eq!(events[0].kind, Phase::Parse as u8);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::new();
        obs.set_enabled(false);
        let token = obs.begin_op("INSERT");
        obs.phase(Phase::Apply, Duration::from_micros(5));
        obs.finish_op(token, Outcome::Ok, None);
        assert!(obs.profile().classes.is_empty());
        assert!(obs.profile().phases.is_empty());
        assert!(obs.events(10).is_empty());
    }

    #[test]
    fn slow_ops_promote_their_span_tree() {
        let obs = Obs::new();
        obs.set_slow_threshold_us(1); // 1 µs — everything is slow
        obs.set_test_delay_us(5); // a hot op can finish in <1 µs of wall clock
        let token = obs.begin_op("SELECT … CHOOSE 1");
        obs.set_txn(42);
        obs.phase(Phase::Solve, Duration::from_micros(10));
        obs.finish_op(token, Outcome::Ok, Some(42));
        let slow = obs.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].class, "SELECT … CHOOSE 1");
        assert_eq!(slow[0].txn_id, 42);
        assert_eq!(slow[0].spans.len(), 1);
        assert_eq!(slow[0].spans[0].phase, Phase::Solve);
        assert!(slow[0].total_ns >= 1_000);
    }

    #[test]
    fn slow_log_capacity_evicts_oldest() {
        let obs = Obs::new();
        obs.set_slow_threshold_us(1);
        obs.set_test_delay_us(5); // ensure every op clears the threshold
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            let token = obs.begin_op("INSERT");
            obs.finish_op(token, Outcome::Ok, Some(i as u64));
        }
        let slow = obs.slow_ops();
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY);
        assert_eq!(slow[0].txn_id, 5, "oldest five evicted");
    }

    #[test]
    fn test_delay_hook_forces_an_op_over_threshold_and_into_the_trace() {
        let obs = Obs::new();
        let buf = SharedBuf::default();
        obs.set_trace(Some(Box::new(buf.clone())));
        obs.set_slow_threshold_us(500);
        obs.set_test_delay_us(1_000); // 1 ms — far over the 500 µs threshold
        let token = obs.begin_op("GROUND ALL");
        obs.phase(Phase::Apply, Duration::from_micros(2));
        obs.finish_op(token, Outcome::Ok, None);
        let slow = obs.slow_ops();
        assert_eq!(slow.len(), 1, "delayed op promoted to the slow log");
        assert!(slow[0].total_ns >= 1_000_000);
        let text = String::from_utf8(lock(&buf.0).clone()).unwrap();
        assert!(text.ends_with("]}\n"), "JSONL line is newline-terminated");
        assert!(text.contains("\"class\":\"GROUND ALL\""));
        assert!(text.contains("\"phase\":\"apply\""));
        assert!(text.contains("\"start_ns\":"));
    }

    #[test]
    fn profile_display_renders_a_table() {
        let obs = Obs::new();
        let token = obs.begin_op("SELECT");
        obs.phase(Phase::Parse, Duration::from_micros(3));
        obs.finish_op(token, Outcome::Ok, None);
        let text = obs.profile().to_string();
        assert!(text.contains("class"));
        assert!(text.contains("SELECT"));
        assert!(text.contains("parse"));
        assert!(text.contains("p999_us"));
    }

    #[test]
    fn reset_clears_histograms_and_slow_log() {
        let obs = Obs::new();
        obs.set_slow_threshold_us(1);
        let token = obs.begin_op("DELETE");
        obs.phase(Phase::Apply, Duration::from_micros(9));
        obs.finish_op(token, Outcome::Ok, None);
        obs.reset();
        let report = obs.profile();
        assert!(report.phases.is_empty());
        assert_eq!(report.classes.len(), 1, "class entry survives, zeroed");
        assert_eq!(report.classes[0].1.count, 0);
        assert!(obs.slow_ops().is_empty());
    }

    #[test]
    fn escape_json_handles_quotes_and_control_bytes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("SELECT … CHOOSE 1"), "SELECT … CHOOSE 1");
    }
}
