//! Zero-dependency observability for the quantum database.
//!
//! The engine's [`Metrics`](../qdb_core) counters say *how many* events
//! happened; this crate says *how long they took* and *what a slow
//! operation actually did*. It is built in the workspace's offline-shim
//! idiom — `std` only, no `tracing`, no `hdrhistogram` — and consists of
//! three pieces threaded through every layer from the solver to the wire:
//!
//! 1. [`Histogram`]: atomic log-bucketed latency histograms (power-of-two
//!    buckets over nanoseconds, lock-free `record`, mergeable
//!    [`HistSnapshot`]s with p50/p90/p99/p999/max), recorded per statement
//!    class and per engine [`Phase`].
//! 2. A flight recorder — [`EventRing`], a fixed-capacity lock-free ring
//!    of structured [`SpanEvent`]s (monotonic timestamp, txn id, partition
//!    id, phase, duration, outcome) capturing the most recent operations
//!    at near-zero steady-state cost — plus a slow-op log that promotes
//!    any over-threshold operation's full span tree to a retained list.
//! 3. [`Obs`], the shared handle both engines record through, surfaced by
//!    the `SHOW PROFILE` / `SHOW EVENTS` statements, the wire protocol's
//!    PROFILE/EVENTS frames, and the server's `--trace-out` JSONL export.
//!
//! See `docs/OBSERVABILITY.md` for the bucket scheme, ring overwrite
//! policy, and how to read the reports.

mod histogram;
mod obs;
mod ring;

pub use histogram::{bucket_index, bucket_upper_bound, HistSnapshot, HistSummary, Histogram};
pub use obs::{escape_json, Obs, OpToken, ProfileReport, SlowOp, SpanNode};
pub use ring::{EventRing, SpanEvent};

use std::sync::OnceLock;
use std::time::Instant;

/// Timed engine phases. Each phase owns one [`Histogram`] inside [`Obs`]
/// and names the span events the flight recorder captures.
///
/// The single-threaded engine takes no locks, so it never records
/// [`Phase::BaseLockWait`] / [`Phase::PartitionLockWait`]; profile reports
/// include only phases with a non-zero count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// SQL text → [`Statement`](../qdb_logic) parse.
    Parse = 0,
    /// Admission planning: candidate merge, overlay setup, solve, verify.
    Plan = 1,
    /// Solver search proper (`solve` / `solve_in` / `verify`).
    Solve = 2,
    /// State mutation: partition install, grounding apply, blind writes.
    Apply = 3,
    /// WAL record append (buffering plus any group-commit drain it forces).
    WalAppend = 4,
    /// WAL group-commit drain / flush to the sink.
    WalFlush = 5,
    /// Waiting to acquire the sharded engine's base lock.
    BaseLockWait = 6,
    /// Waiting to acquire a per-partition slot lock.
    PartitionLockWait = 7,
    /// Possible-world enumeration for `SELECT POSSIBLE`.
    WorldEnum = 8,
}

/// Number of [`Phase`] variants (histogram array length).
pub const PHASE_COUNT: usize = 9;

/// All phases in `repr` order.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Parse,
    Phase::Plan,
    Phase::Solve,
    Phase::Apply,
    Phase::WalAppend,
    Phase::WalFlush,
    Phase::BaseLockWait,
    Phase::PartitionLockWait,
    Phase::WorldEnum,
];

impl Phase {
    /// Stable display name (also the JSONL / report key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Solve => "solve",
            Phase::Apply => "apply",
            Phase::WalAppend => "wal_append",
            Phase::WalFlush => "wal_flush",
            Phase::BaseLockWait => "base_lock_wait",
            Phase::PartitionLockWait => "partition_lock_wait",
            Phase::WorldEnum => "world_enum",
        }
    }
}

/// How an operation (or span) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Outcome {
    /// Completed normally.
    #[default]
    Ok = 0,
    /// The engine refused admission (`Response::Aborted`).
    Aborted = 1,
    /// The statement returned an error.
    Error = 2,
}

impl Outcome {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Aborted => "aborted",
            Outcome::Error => "error",
        }
    }

    /// Decode a wire byte (unknown bytes coerce to [`Outcome::Error`]).
    pub fn from_u8(b: u8) -> Outcome {
        match b {
            0 => Outcome::Ok,
            1 => Outcome::Aborted,
            _ => Outcome::Error,
        }
    }
}

/// Statement classes the flight recorder can tag events with, in wire-code
/// order. These mirror `Statement::kind()` strings exactly.
pub const STMT_CLASSES: [&str; 13] = [
    "CREATE TABLE",
    "CREATE INDEX",
    "INSERT",
    "DELETE",
    "SELECT",
    "SELECT … CHOOSE 1",
    "GROUND",
    "GROUND ALL",
    "CHECKPOINT",
    "SHOW METRICS",
    "SHOW PENDING",
    "SHOW PROFILE",
    "SHOW EVENTS",
];

/// First kind code used for statement classes (codes `0..PHASE_COUNT` are
/// phases).
pub const STMT_CODE_BASE: u8 = 32;

/// Kind code for a statement class (`255` for classes outside
/// [`STMT_CLASSES`]).
pub fn stmt_code(class: &str) -> u8 {
    STMT_CLASSES
        .iter()
        .position(|c| *c == class)
        .map(|i| STMT_CODE_BASE + i as u8)
        .unwrap_or(u8::MAX)
}

/// Display name for any event kind code: phase names below
/// [`STMT_CODE_BASE`], statement classes above, `"?"` otherwise.
pub fn kind_name(code: u8) -> &'static str {
    if (code as usize) < PHASE_COUNT {
        PHASES[code as usize].name()
    } else if code >= STMT_CODE_BASE && ((code - STMT_CODE_BASE) as usize) < STMT_CLASSES.len() {
        STMT_CLASSES[(code - STMT_CODE_BASE) as usize]
    } else {
        "?"
    }
}

/// Monotonic nanoseconds since the first observability call in this
/// process. Wall-clock independent, so it never runs backwards; only
/// useful for ordering and deltas, not absolute time.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip_phases_and_classes() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert_eq!(kind_name(*p as u8), p.name());
        }
        for class in STMT_CLASSES {
            let code = stmt_code(class);
            assert!(code >= STMT_CODE_BASE);
            assert_eq!(kind_name(code), class);
        }
        assert_eq!(stmt_code("NO SUCH CLASS"), u8::MAX);
        assert_eq!(kind_name(200), "?");
        assert_eq!(kind_name(u8::MAX), "?");
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn outcome_bytes_roundtrip() {
        for o in [Outcome::Ok, Outcome::Aborted, Outcome::Error] {
            assert_eq!(Outcome::from_u8(o as u8), o);
        }
        assert_eq!(Outcome::from_u8(77), Outcome::Error);
    }
}
