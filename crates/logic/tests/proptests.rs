//! Property-based tests for the logic substrate: unification laws, parser
//! round-trips, codec round-trips.

use proptest::prelude::*;
use qdb_logic::codec::{decode_transaction, encode_transaction};
use qdb_logic::{
    mgu, parse_transaction, Atom, BodyAtom, ResourceTransaction, Term, UnifPredicate, UpdateAtom,
    Valuation, Var, VarGen,
};
use qdb_storage::Value;

/// A small pool of variables (ids 0..4, names x0..x3) and constants.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..4).prop_map(|id| Term::Var(Var::new(id, format!("x{id}")))),
        (0i64..4).prop_map(Term::val),
        prop_oneof![Just("a"), Just("b")].prop_map(Term::val),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("A"), Just("B")],
        prop::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(rel, terms)| Atom::new(rel, terms))
}

/// A random total valuation for ids 0..4 over a small value domain.
fn arb_valuation() -> impl Strategy<Value = Valuation> {
    prop::collection::vec(0i64..4, 4).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(id, v)| (Var::new(id as u32, format!("x{id}")), Value::from(v)))
            .collect()
    })
}

fn apply_valuation(a: &Atom, val: &Valuation) -> Option<Vec<Value>> {
    a.terms.iter().map(|t| val.resolve(t)).collect()
}

proptest! {
    /// mgu soundness: θ(a) == θ(b) whenever θ exists.
    #[test]
    fn mgu_is_a_unifier(a in arb_atom(), b in arb_atom()) {
        if let Some(theta) = mgu(&a, &b) {
            prop_assert_eq!(a.apply(&theta), b.apply(&theta));
        }
    }

    /// mgu is symmetric in satisfiability: mgu(a,b) exists iff mgu(b,a) does.
    #[test]
    fn mgu_symmetry(a in arb_atom(), b in arb_atom()) {
        prop_assert_eq!(mgu(&a, &b).is_some(), mgu(&b, &a).is_some());
    }

    /// mgu idempotence: applying θ twice equals applying it once.
    #[test]
    fn mgu_idempotent(a in arb_atom(), b in arb_atom()) {
        if let Some(theta) = mgu(&a, &b) {
            let once = a.apply(&theta);
            prop_assert_eq!(once.apply(&theta), once);
        }
    }

    /// Most-generality via Definition 3.3: a total valuation makes the two
    /// atoms equal iff it satisfies the unification predicate.
    #[test]
    fn unification_predicate_characterizes_unifiers(
        (a, b) in (1usize..4).prop_flat_map(|arity| (
            prop::collection::vec(arb_term(), arity..=arity),
            prop::collection::vec(arb_term(), arity..=arity),
        )).prop_map(|(ta, tb)| (Atom::new("R", ta), Atom::new("R", tb))),
        val in arb_valuation(),
    ) {
        let phi = UnifPredicate::of(&a, &b);
        let ga = apply_valuation(&a, &val).unwrap();
        let gb = apply_valuation(&b, &val).unwrap();
        let equal = ga == gb;
        let satisfied = phi.eval(&val).unwrap();
        prop_assert_eq!(equal, satisfied, "phi = {}", phi);
    }

    /// Display → parse is the identity on rendered transactions.
    #[test]
    fn display_parse_roundtrip(
        n_upd in 1usize..3,
        n_body in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Build a guaranteed-valid transaction: updates reuse body vars.
        let mut g = VarGen::new();
        let vars: Vec<Var> = (0..3).map(|i| g.fresh(format!("v{i}"))).collect();
        let body: Vec<BodyAtom> = (0..n_body)
            .map(|i| {
                let t1 = Term::Var(vars[i % 3].clone());
                let t2 = Term::Var(vars[(i + 1) % 3].clone());
                BodyAtom {
                    atom: Atom::new(if i % 2 == 0 { "A" } else { "B" }, vec![t1, t2]),
                    // Keep at least one required atom so updates range-check.
                    optional: i > 0 && (seed >> i) & 1 == 1,
                }
            })
            .collect();
        let first = &body[0].atom;
        let updates: Vec<UpdateAtom> = (0..n_upd)
            .map(|i| {
                if i % 2 == 0 {
                    UpdateAtom::delete(first.clone())
                } else {
                    UpdateAtom::insert(Atom::new("C", first.terms.clone()))
                }
            })
            .collect();
        let t = ResourceTransaction::new(updates, body).unwrap();
        let reparsed = parse_transaction(&t.to_string()).unwrap();
        prop_assert_eq!(t.to_string(), reparsed.to_string());
    }

    /// Codec round-trip preserves transactions bit-exactly.
    #[test]
    fn codec_roundtrip(n_body in 1usize..4) {
        let mut g = VarGen::new();
        let v: Vec<Var> = (0..3).map(|i| g.fresh(format!("y{i}"))).collect();
        let body: Vec<BodyAtom> = (0..n_body)
            .map(|i| BodyAtom::required(Atom::new(
                "A",
                vec![Term::Var(v[i % 3].clone()), Term::val(i as i64)],
            )))
            .collect();
        let updates = vec![UpdateAtom::insert(body[0].atom.clone())];
        let t = ResourceTransaction::new(updates, body).unwrap();
        let back = decode_transaction(&encode_transaction(&t)).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Freshening yields disjoint variable ids and identical rendering.
    #[test]
    fn freshen_properties(offset in 0u32..1000) {
        let t = parse_transaction(
            "-A(f, s), +B(M, f, s) :-1 A(f, s), B(G, f, s2)?, Adj(s, s2)?",
        ).unwrap();
        let mut g = VarGen::starting_at(offset + 10);
        let fresh = t.freshen(&mut g);
        prop_assert_eq!(fresh.to_string(), t.to_string());
        let old: std::collections::BTreeSet<u32> = t.vars().iter().map(Var::id).collect();
        let new: std::collections::BTreeSet<u32> = fresh.vars().iter().map(Var::id).collect();
        prop_assert!(old.is_disjoint(&new));
    }
}
