//! Text syntax for the Datalog-like intermediate representation (§2, §4).
//!
//! The paper's prototype "does not accept and parse resource transactions in
//! their SQL format, but only in the intermediate Datalog-like
//! representation" — this module is that representation's parser.
//!
//! Syntax:
//!
//! ```text
//! transaction := update ("," update)* ":-1" bodyatom ("," bodyatom)*
//! update      := ("+" | "-") atom
//! bodyatom    := atom "?"?              -- "?" marks an OPTIONAL atom
//! atom        := Relation "(" term ("," term)* ")"
//! term        := variable | constant
//! variable    := lowercase ident, or "_" for a fresh anonymous variable
//! constant    := integer | 'string' | "string" | true | false
//!                | Uppercase ident (shorthand for the string of that name)
//! ```
//!
//! Relation names start with an uppercase letter. In term position an
//! uppercase ident is a *string constant* — this mirrors the paper's
//! abbreviations (`B(M, f1, s1)` where `M` stands for `'Mickey'`).

use std::collections::HashMap;

use qdb_storage::Value;

use crate::atom::Atom;
use crate::term::{Term, Var, VarGen};
use crate::transaction::{BodyAtom, ResourceTransaction, UpdateAtom};
use crate::{LogicError, Result};

/// A parsed conjunctive query: atoms plus the name→variable mapping needed
/// to interpret results.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The query atoms (all non-optional).
    pub atoms: Vec<Atom>,
    vars: Vec<Var>,
}

impl ParsedQuery {
    /// The variable parsed under `name`, if any.
    pub fn var(&self, name: &str) -> Option<&Var> {
        self.vars.iter().find(|v| v.name() == name)
    }

    /// All named variables in first-occurrence order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

/// Parse a resource transaction from text.
pub fn parse_transaction(input: &str) -> Result<ResourceTransaction> {
    Parser::new(input)?.transaction()
}

/// Parse a conjunctive query (comma-separated atoms).
pub fn parse_query(input: &str) -> Result<ParsedQuery> {
    Parser::new(input)?.query()
}

/// Parse a single atom.
pub fn parse_atom(input: &str) -> Result<Atom> {
    let mut p = Parser::new(input)?;
    let atom = p.atom()?;
    p.expect_eof()?;
    Ok(atom)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Plus,
    Minus,
    Comma,
    LParen,
    RParen,
    Question,
    Turnstile, // ":-1"
    Ident(String),
    Int(i64),
    Str(String),
    Eof,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vargen: VarGen,
    vars: HashMap<String, Var>,
    var_order: Vec<Var>,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            vargen: VarGen::new(),
            vars: HashMap::new(),
            var_order: Vec::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, reason: impl Into<String>) -> LogicError {
        LogicError::Parse {
            at: self.at(),
            reason: reason.into(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn transaction(&mut self) -> Result<ResourceTransaction> {
        let mut updates = Vec::new();
        loop {
            let kind = match self.peek() {
                Tok::Plus => {
                    self.bump();
                    UpdateAtom::insert
                }
                Tok::Minus => {
                    self.bump();
                    UpdateAtom::delete
                }
                _ => return Err(self.error("expected '+' or '-' starting an update atom")),
            };
            updates.push(kind(self.atom()?));
            match self.peek() {
                Tok::Comma => {
                    self.bump();
                }
                Tok::Turnstile => break,
                _ => return Err(self.error("expected ',' or ':-1' after update atom")),
            }
        }
        self.expect(Tok::Turnstile, "':-1'")?;
        let mut body = Vec::new();
        loop {
            let atom = self.atom()?;
            let optional = if *self.peek() == Tok::Question {
                self.bump();
                true
            } else {
                false
            };
            body.push(BodyAtom { atom, optional });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_eof()?;
        ResourceTransaction::new(updates, body)
    }

    fn query(&mut self) -> Result<ParsedQuery> {
        let mut atoms = vec![self.atom()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            atoms.push(self.atom()?);
        }
        self.expect_eof()?;
        Ok(ParsedQuery {
            atoms,
            vars: self.var_order.clone(),
        })
    }

    fn atom(&mut self) -> Result<Atom> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.error(format!("expected relation name, found {other:?}"))),
        };
        if !name.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Err(self.error(format!(
                "relation name '{name}' must start with an uppercase letter"
            )));
        }
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                terms.push(self.term()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(Atom::new(name, terms))
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Tok::Int(i) => Ok(Term::val(i)),
            Tok::Str(s) => Ok(Term::Const(Value::from(s))),
            Tok::Minus => match self.bump() {
                Tok::Int(i) => Ok(Term::val(-i)),
                other => Err(self.error(format!("expected integer after '-', found {other:?}"))),
            },
            Tok::Ident(s) => {
                if s == "true" {
                    Ok(Term::Const(Value::Bool(true)))
                } else if s == "false" {
                    Ok(Term::Const(Value::Bool(false)))
                } else if s == "_" {
                    let n = self.var_order.len();
                    let v = self.vargen.fresh(format!("_{n}"));
                    self.var_order.push(v.clone());
                    Ok(Term::Var(v))
                } else if s.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Uppercase ident in term position: string constant
                    // shorthand, as in the paper's `B(M, f1, s1)`.
                    Ok(Term::Const(Value::from(s)))
                } else {
                    let var = match self.vars.get(&s) {
                        Some(v) => v.clone(),
                        None => {
                            let v = self.vargen.fresh(&s);
                            self.vars.insert(s, v.clone());
                            self.var_order.push(v.clone());
                            v
                        }
                    };
                    Ok(Term::Var(var))
                }
            }
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '?' => {
                toks.push((Tok::Question, i));
                i += 1;
            }
            ':' => {
                if input[i..].starts_with(":-1") {
                    toks.push((Tok::Turnstile, i));
                    i += 3;
                } else {
                    return Err(LogicError::Parse {
                        at: i,
                        reason: "expected ':-1'".into(),
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LogicError::Parse {
                            at: start,
                            reason: "unterminated string literal".into(),
                        });
                    }
                    let d = bytes[i] as char;
                    if d == quote {
                        i += 1;
                        break;
                    }
                    s.push(d);
                    i += 1;
                }
                toks.push((Tok::Str(s), start));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|e| LogicError::Parse {
                    at: start,
                    reason: format!("bad integer: {e}"),
                })?;
                toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(LogicError::Parse {
                    at: i,
                    reason: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::UpdateKind;

    #[test]
    fn parses_the_running_example() {
        let t = parse_transaction(
            "-A(f1, s1), +B(M, f1, s1) :-1 A(f1, s1), B(G, f1, s2)?, Adj(s1, s2)?",
        )
        .unwrap();
        assert_eq!(t.updates.len(), 2);
        assert_eq!(t.updates[0].kind, UpdateKind::Delete);
        assert_eq!(t.updates[1].kind, UpdateKind::Insert);
        assert_eq!(t.body.len(), 3);
        assert!(!t.body[0].optional);
        assert!(t.body[1].optional && t.body[2].optional);
        // Display round-trips (uppercase shorthand becomes quoted strings).
        assert_eq!(
            t.to_string(),
            "-A(f1, s1), +B('M', f1, s1) :-1 A(f1, s1), B('G', f1, s2)?, Adj(s1, s2)?"
        );
        // Shared variables really are shared.
        let f1_body = t.body[0].atom.terms[0].as_var().unwrap();
        let f1_update = t.updates[0].atom.terms[0].as_var().unwrap();
        assert_eq!(f1_body, f1_update);
    }

    #[test]
    fn parse_then_display_then_parse_is_identity() {
        let src = "-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?";
        let t1 = parse_transaction(src).unwrap();
        let t2 = parse_transaction(&t1.to_string()).unwrap();
        assert_eq!(t1.to_string(), t2.to_string());
    }

    #[test]
    fn parses_constants_of_all_types() {
        let a = parse_atom("R(1, 'two', \"three\", true, false, Four)").unwrap();
        assert_eq!(a.terms[0], Term::val(1));
        assert_eq!(a.terms[1], Term::val("two"));
        assert_eq!(a.terms[2], Term::val("three"));
        assert_eq!(a.terms[3], Term::Const(Value::Bool(true)));
        assert_eq!(a.terms[4], Term::Const(Value::Bool(false)));
        assert_eq!(a.terms[5], Term::val("Four"));
    }

    #[test]
    fn negative_integers() {
        let a = parse_atom("R(-5)").unwrap();
        assert_eq!(a.terms[0], Term::val(-5));
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let q = parse_query("A(_, _), B(_)").unwrap();
        let vars: Vec<_> = q.vars().to_vec();
        assert_eq!(vars.len(), 3);
        let ids: std::collections::BTreeSet<u32> = vars.iter().map(Var::id).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn query_variable_lookup() {
        let q = parse_query("Bookings('Mickey', f, s)").unwrap();
        assert!(q.var("f").is_some());
        assert!(q.var("s").is_some());
        assert!(q.var("zzz").is_none());
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_transaction("+A(x) :- A(x)").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_atom("R(x").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_atom("r(x)").unwrap_err();
        assert!(err.to_string().contains("uppercase"));
        let err = parse_atom("R('unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err = parse_atom("R(@)").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn range_restriction_checked_by_parser_output() {
        // `y` only in the update: invalid.
        let err = parse_transaction("+B(y) :-1 A(x)").unwrap_err();
        assert!(matches!(err, LogicError::RangeRestriction { .. }));
        // `y` only in an optional atom: also invalid.
        let err = parse_transaction("+B(y) :-1 A(x), C(y)?").unwrap_err();
        assert!(matches!(err, LogicError::RangeRestriction { .. }));
    }

    #[test]
    fn zero_arity_atoms_allowed() {
        let a = parse_atom("Flag()").unwrap();
        assert_eq!(a.arity(), 0);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("A(x) B(y)").is_err());
        assert!(parse_atom("A(x))").is_err());
    }
}
