//! Variables and terms.

use std::fmt;
use std::sync::Arc;

use qdb_storage::Value;

/// A logic variable.
///
/// Identity is the numeric `id` alone; the `name` travels with the variable
/// purely for display. Freshening (renaming apart, as required by the
/// composition theorem's "no shared variables" precondition) allocates a new
/// id while keeping the human-readable name.
#[derive(Debug, Clone)]
pub struct Var {
    id: u32,
    name: Arc<str>,
}

impl Var {
    /// Build a variable with an explicit id and display name. Most code
    /// should allocate through [`VarGen`] instead.
    pub fn new(id: u32, name: impl AsRef<str>) -> Self {
        Var {
            id,
            name: Arc::from(name.as_ref()),
        }
    }

    /// Numeric identity.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Display name (not part of identity).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Var {}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Var {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Allocator of globally fresh variables.
///
/// The engine owns one `VarGen`; every admitted transaction is *freshened*
/// through it so that distinct transactions never share variable ids —
/// the standing assumption of Lemma 3.4 ("T1 and T2 have no shared
/// variables").
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator starting at id 0.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// A generator starting at a given id (used after recovery).
    pub fn starting_at(next: u32) -> Self {
        VarGen { next }
    }

    /// Allocate a fresh variable with the given display name.
    pub fn fresh(&mut self, name: impl AsRef<str>) -> Var {
        let v = Var::new(self.next, name);
        self.next += 1;
        v
    }

    /// The next id that would be allocated.
    pub fn watermark(&self) -> u32 {
        self.next
    }

    /// Advance the watermark to at least `id + 1` (used when ingesting
    /// transactions with pre-assigned ids, e.g. during recovery).
    pub fn reserve_through(&mut self, id: u32) {
        self.next = self.next.max(id + 1);
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A logic variable.
    Var(Var),
    /// A constant data value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for constants.
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_identity_is_id_not_name() {
        let a = Var::new(1, "s");
        let b = Var::new(1, "t");
        let c = Var::new(2, "s");
        assert_eq!(a, b);
        assert_ne!(a, c);
        use std::collections::HashSet;
        let set: HashSet<Var> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn vargen_allocates_fresh_ids() {
        let mut g = VarGen::new();
        let a = g.fresh("s1");
        let b = g.fresh("s1");
        assert_ne!(a, b);
        assert_eq!(a.name(), b.name());
        assert_eq!(g.watermark(), 2);
        g.reserve_through(10);
        assert_eq!(g.fresh("x").id(), 11);
        g.reserve_through(3); // never goes backwards
        assert_eq!(g.watermark(), 12);
    }

    #[test]
    fn term_accessors() {
        let mut g = VarGen::new();
        let v = Term::from(g.fresh("f"));
        let c = Term::val(5);
        assert!(v.is_var() && !c.is_var());
        assert!(v.as_var().is_some() && v.as_const().is_none());
        assert_eq!(c.as_const(), Some(&Value::from(5)));
        assert_eq!(v.to_string(), "f");
        assert_eq!(c.to_string(), "5");
        assert_eq!(Term::val("LA").to_string(), "'LA'");
    }
}
