//! Substitutions: maps from variables to terms.
//!
//! Used in triangle form: a binding may map a variable to another variable
//! that is itself bound. [`Substitution::resolve`] walks chains to a fixed
//! point. With flat terms (no function symbols) there is no occurs-check to
//! worry about; cycles cannot arise because [`Substitution::bind`] never
//! binds a variable that already resolves to something else.

use std::collections::BTreeMap;

use crate::term::{Term, Var};

/// A substitution `θ`: finite map from variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Var, Term>,
}

impl Substitution {
    /// The empty (identity) substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the identity substitution.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over raw bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> + '_ {
        self.map.iter()
    }

    /// Walk `t` through the substitution until it no longer changes.
    pub fn resolve(&self, t: &Term) -> Term {
        let mut current = t.clone();
        // Chains are short (bounded by #bindings); guard anyway.
        for _ in 0..=self.map.len() {
            match &current {
                Term::Var(v) => match self.map.get(v) {
                    Some(next) => current = next.clone(),
                    None => return current,
                },
                Term::Const(_) => return current,
            }
        }
        current
    }

    /// Bind `v` to `t`. Both sides are resolved first; binding a variable
    /// to itself is a no-op. Returns `false` if `v` already resolves to a
    /// *different constant* than `t` (callers treat that as unification
    /// failure).
    pub fn bind(&mut self, v: &Var, t: &Term) -> bool {
        let lhs = self.resolve(&Term::Var(v.clone()));
        let rhs = self.resolve(t);
        match (lhs, rhs) {
            (l, r) if l == r => true,
            (Term::Var(lv), r) => {
                self.map.insert(lv, r);
                true
            }
            (l, Term::Var(rv)) => {
                self.map.insert(rv, l);
                true
            }
            (Term::Const(_), Term::Const(_)) => false,
        }
    }

    /// Apply this substitution after `first` (function composition
    /// `self ∘ first`): resolve every binding of `first` through `self`,
    /// then add `self`'s own bindings.
    pub fn compose(&self, first: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in first.iter() {
            out.map.insert(v.clone(), self.resolve(t));
        }
        for (v, t) in self.iter() {
            out.map.entry(v.clone()).or_insert_with(|| t.clone());
        }
        out
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

impl std::fmt::Display for Substitution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}/{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarGen;

    #[test]
    fn resolve_walks_chains() {
        let mut g = VarGen::new();
        let (a, b) = (g.fresh("a"), g.fresh("b"));
        let mut s = Substitution::new();
        assert!(s.bind(&a, &Term::Var(b.clone())));
        assert!(s.bind(&b, &Term::val(7)));
        assert_eq!(s.resolve(&Term::Var(a)), Term::val(7));
    }

    #[test]
    fn bind_conflicting_constants_fails() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut s = Substitution::new();
        assert!(s.bind(&a, &Term::val(1)));
        assert!(!s.bind(&a, &Term::val(2)));
        assert!(s.bind(&a, &Term::val(1))); // same constant: fine
    }

    #[test]
    fn bind_var_to_itself_is_noop() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut s = Substitution::new();
        assert!(s.bind(&a, &Term::Var(a.clone())));
        assert!(s.is_empty());
    }

    #[test]
    fn aliased_vars_share_later_bindings() {
        let mut g = VarGen::new();
        let (a, b) = (g.fresh("a"), g.fresh("b"));
        let mut s = Substitution::new();
        s.bind(&a, &Term::Var(b.clone()));
        s.bind(&a, &Term::val(3)); // binds through the alias
        assert_eq!(s.resolve(&Term::Var(b)), Term::val(3));
    }

    #[test]
    fn compose_applies_in_order() {
        // first = {a/b}, self = {b/7}; self ∘ first maps a -> 7.
        let mut g = VarGen::new();
        let (a, b) = (g.fresh("a"), g.fresh("b"));
        let first: Substitution = [(a.clone(), Term::Var(b.clone()))].into_iter().collect();
        let second: Substitution = [(b.clone(), Term::val(7))].into_iter().collect();
        let composed = second.compose(&first);
        assert_eq!(composed.resolve(&Term::Var(a)), Term::val(7));
        assert_eq!(composed.resolve(&Term::Var(b)), Term::val(7));
    }

    #[test]
    fn display_uses_slash_notation() {
        let mut g = VarGen::new();
        let a = g.fresh("v1");
        let s: Substitution = [(a, Term::val(2))].into_iter().collect();
        assert_eq!(s.to_string(), "{v1/2}");
    }
}
