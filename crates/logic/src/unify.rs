//! Most general unifiers (Definition 3.2).

use crate::atom::Atom;
use crate::substitution::Substitution;

/// Compute the most general unifier of two atoms, if any.
///
/// Definition 3.2: a unifier `θ` has `θ(b1) = θ(b2)`; the mgu is the one
/// every other unifier factors through. For flat atoms (variables and
/// constants only) the column-wise binding pass below produces exactly the
/// mgu.
pub fn mgu(a: &Atom, b: &Atom) -> Option<Substitution> {
    if a.relation != b.relation || a.arity() != b.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        let ra = subst.resolve(ta);
        let rb = subst.resolve(tb);
        match (&ra, &rb) {
            (crate::Term::Var(v), _) => {
                if !subst.bind(v, &rb) {
                    return None;
                }
            }
            (_, crate::Term::Var(v)) => {
                if !subst.bind(v, &ra) {
                    return None;
                }
            }
            (crate::Term::Const(x), crate::Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
        }
    }
    Some(subst)
}

/// Do two atoms unify at all?
pub fn unifiable(a: &Atom, b: &Atom) -> bool {
    mgu(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, VarGen};

    /// Build `R(1, v1, v2)` and `R(v3, 2, v4)` — the worked example under
    /// Definition 3.3 in the paper.
    fn paper_example() -> (Atom, Atom, VarGen) {
        let mut g = VarGen::new();
        let v1 = g.fresh("v1");
        let v2 = g.fresh("v2");
        let v3 = g.fresh("v3");
        let v4 = g.fresh("v4");
        let a = Atom::new("R", vec![Term::val(1), Term::Var(v1), Term::Var(v2)]);
        let b = Atom::new("R", vec![Term::Var(v3), Term::val(2), Term::Var(v4)]);
        (a, b, g)
    }

    #[test]
    fn paper_mgu_example() {
        // mgu is {v1/2, v2/v4, v3/1} (up to var-var orientation).
        let (a, b, _) = paper_example();
        let theta = mgu(&a, &b).unwrap();
        assert_eq!(theta.len(), 3);
        assert_eq!(a.apply(&theta), b.apply(&theta));
        assert_eq!(theta.resolve(&a.terms[1]), Term::val(2), "v1 must map to 2");
        assert_eq!(theta.resolve(&b.terms[0]), Term::val(1), "v3 must map to 1");
        assert_eq!(theta.resolve(&a.terms[2]), theta.resolve(&b.terms[2]));
    }

    #[test]
    fn different_relations_or_arities_never_unify() {
        let mut g = VarGen::new();
        let x = Term::Var(g.fresh("x"));
        let a = Atom::new("A", vec![x.clone()]);
        let b = Atom::new("B", vec![x.clone()]);
        assert!(!unifiable(&a, &b));
        let c = Atom::new("A", vec![x.clone(), x.clone()]);
        assert!(!unifiable(&a, &c));
    }

    #[test]
    fn constant_clash_fails() {
        let a = Atom::new("A", vec![Term::val(1)]);
        let b = Atom::new("A", vec![Term::val(2)]);
        assert!(mgu(&a, &b).is_none());
        let c = Atom::new("A", vec![Term::val(1)]);
        assert!(mgu(&a, &c).is_some_and(|s| s.is_empty()));
    }

    #[test]
    fn repeated_vars_propagate_constraints() {
        // A(x, x) vs A(1, y) forces y = 1.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let a = Atom::new("A", vec![Term::Var(x.clone()), Term::Var(x.clone())]);
        let b = Atom::new("A", vec![Term::val(1), Term::Var(y.clone())]);
        let theta = mgu(&a, &b).unwrap();
        assert_eq!(theta.resolve(&Term::Var(y)), Term::val(1));
        assert_eq!(theta.resolve(&Term::Var(x)), Term::val(1));
    }

    #[test]
    fn repeated_vars_can_fail_through_propagation() {
        // A(x, x) vs A(1, 2) is not unifiable.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let a = Atom::new("A", vec![Term::Var(x.clone()), Term::Var(x)]);
        let b = Atom::new("A", vec![Term::val(1), Term::val(2)]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn mgu_is_most_general() {
        // For A(x, y) vs A(y', 3): the mgu leaves one degree of freedom.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let yp = g.fresh("yp");
        let a = Atom::new("A", vec![Term::Var(x.clone()), Term::Var(y.clone())]);
        let b = Atom::new("A", vec![Term::Var(yp.clone()), Term::val(3)]);
        let theta = mgu(&a, &b).unwrap();
        let ax = theta.resolve(&Term::Var(x));
        assert!(ax.is_var(), "x stays free (aliased), got {ax}");
        assert_eq!(theta.resolve(&Term::Var(y)), Term::val(3));
    }

    #[test]
    fn ground_atoms_unify_iff_equal() {
        let a = Atom::new("A", vec![Term::val(1), Term::val("x")]);
        let b = Atom::new("A", vec![Term::val(1), Term::val("x")]);
        let c = Atom::new("A", vec![Term::val(1), Term::val("y")]);
        assert!(mgu(&a, &b).is_some_and(|s| s.is_empty()));
        assert!(mgu(&a, &c).is_none());
    }
}
