//! Composition of resource transactions (Lemma 3.4 / Theorem 3.5).
//!
//! A sequence of resource transactions is equivalent to a single
//! transaction whose body is built as follows: for each body atom `b` of a
//! later transaction and each earlier update,
//!
//! * an **insert** `i` contributes a disjunct — `b` may ground on the
//!   inserted tuple: `(b ∨ ϕ(b, i))`;
//! * a **delete** `d` contributes a negated unification predicate — `b`
//!   must not ground on the deleted tuple: `b ∧ ¬ϕ(b, d)`.
//!
//! We emit one disjunction per atom covering *all* earlier inserts
//! (`b ∨ ϕ(b,i₁) ∨ ϕ(b,i₂) ∨ …`), the semantically correct reading of the
//! paper's `∧ᵢⱼ (bᵢ ∨ ϕ(bᵢ, iⱼ))` when several inserts could supply the
//! same atom.
//!
//! Note a known conservatism inherited from the paper's formula: a delete
//! followed by a *re-insert of the same tuple* is rejected by the formula
//! (`¬ϕ` ranges over all earlier deletes) even though sequential execution
//! would allow a later body atom to ground on the re-inserted tuple. The
//! operational solver (`qdb-solver`) handles that corner exactly; the
//! formula view here is used for satisfiability checks over the common
//! cases, for diagnostics, and for paper-faithful rendering (Figure 3).

use crate::formula::Formula;
use crate::predicate::UnifPredicate;
use crate::term::VarGen;
use crate::transaction::ResourceTransaction;

/// Compose a sequence of transactions into a single body formula,
/// **assuming the transactions' variables are already renamed apart**
/// (the engine freshens every admitted transaction, so its pending lists
/// satisfy this by construction).
///
/// Only non-optional body atoms participate — the quantum database
/// invariant concerns hard constraints only (§2). Use
/// [`compose_with_optionals`] to include optional atoms (for display or
/// for grounding-time checks).
pub fn compose_renamed(txns: &[&ResourceTransaction]) -> Formula {
    compose_inner(txns, false)
}

/// Like [`compose_renamed`] but treats optional atoms as required.
pub fn compose_with_optionals(txns: &[&ResourceTransaction]) -> Formula {
    compose_inner(txns, true)
}

/// Compose transactions that may share variable ids: each is freshened
/// through a common generator first. Returns the renamed transactions
/// alongside the formula so callers can interpret its variables.
pub fn compose(txns: &[&ResourceTransaction]) -> (Vec<ResourceTransaction>, Formula) {
    let mut gen = VarGen::new();
    let renamed: Vec<ResourceTransaction> = txns.iter().map(|t| t.freshen(&mut gen)).collect();
    let refs: Vec<&ResourceTransaction> = renamed.iter().collect();
    let formula = compose_renamed(&refs);
    (renamed, formula)
}

fn compose_inner(txns: &[&ResourceTransaction], include_optionals: bool) -> Formula {
    debug_assert!(vars_disjoint(txns), "transactions must be renamed apart");
    let mut conjuncts: Vec<Formula> = Vec::new();
    for (n, txn) in txns.iter().enumerate() {
        for body in &txn.body {
            if body.optional && !include_optionals {
                continue;
            }
            let b = &body.atom;
            // Disjunction: ground extensionally, or on any earlier insert.
            let mut alternatives = vec![Formula::Atom(b.clone())];
            for earlier in &txns[..n] {
                for ins in earlier.inserts() {
                    alternatives.push(Formula::pred(UnifPredicate::of(b, &ins.atom)));
                }
            }
            conjuncts.push(Formula::or(alternatives));
            // Guards: must not ground on any earlier delete.
            for earlier in &txns[..n] {
                for del in earlier.deletes() {
                    conjuncts.push(Formula::not_pred(UnifPredicate::of(b, &del.atom)));
                }
            }
        }
    }
    Formula::and(conjuncts)
}

fn vars_disjoint(txns: &[&ResourceTransaction]) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    for t in txns {
        let vars = t.vars();
        for v in &vars {
            if !seen.insert(v.id()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transaction;

    /// The three transactions of Figure 3(a):
    ///   (T1) -B(M, 1, s1), +A(1, s1)  :-1  B(M, 1, s1)
    ///   (T2) -A(f2, s2), +B(D, f2, s2) :-1  A(f2, s2)
    ///   (T3) -A(2, s3), +B(G, 2, s3)  :-1  A(2, s3)
    fn figure3() -> Vec<ResourceTransaction> {
        vec![
            parse_transaction("-B(M, 1, s1), +A(1, s1) :-1 B(M, 1, s1)").unwrap(),
            parse_transaction("-A(f2, s2), +B(D, f2, s2) :-1 A(f2, s2)").unwrap(),
            parse_transaction("-A(2, s3), +B(G, 2, s3) :-1 A(2, s3)").unwrap(),
        ]
    }

    #[test]
    fn figure3_composition_of_first_two() {
        let txns = figure3();
        let (_, t12) = compose(&[&txns[0], &txns[1]]);
        // Figure 3(b), first row (the paper writes (s1 = s2); equality is
        // symmetric and our canonical orientation binds T2's variable):
        assert_eq!(
            t12.to_string(),
            "B('M', 1, s1) ∧ {A(f2, s2) ∨ {(f2 = 1) ∧ (s2 = s1)}}"
        );
    }

    #[test]
    fn figure3_composition_of_all_three() {
        let txns = figure3();
        let (_, t123) = compose(&[&txns[0], &txns[1], &txns[2]]);
        // Figure 3(b), second row.
        assert_eq!(
            t123.to_string(),
            "B('M', 1, s1) ∧ {A(f2, s2) ∨ {(f2 = 1) ∧ (s2 = s1)}} \
             ∧ A(2, s3) ∧ ¬{(f2 = 2) ∧ (s3 = s2)}"
        );
    }

    #[test]
    fn composition_of_single_txn_is_its_body() {
        let txns = figure3();
        let (_, f) = compose(&[&txns[0]]);
        assert_eq!(f.to_string(), "B('M', 1, s1)");
    }

    #[test]
    fn unrelated_relations_add_no_guards() {
        let t1 = parse_transaction("-X(a) :-1 X(a)").unwrap();
        let t2 = parse_transaction("+Z(b) :-1 Y(b)").unwrap();
        let (_, f) = compose(&[&t1, &t2]);
        // X's delete can never unify with Y's body atom: formula stays a
        // bare conjunction of the two bodies.
        assert_eq!(f.to_string(), "X(a) ∧ Y(b)");
    }

    #[test]
    fn constant_clash_suppresses_insert_alternative() {
        // T1 inserts A(1, s1); T3-style atom A(2, s3) can never use it.
        let t1 = parse_transaction("+A(1, s1) :-1 B(s1)").unwrap();
        let t2 = parse_transaction("+C(s3) :-1 A(2, s3)").unwrap();
        let (_, f) = compose(&[&t1, &t2]);
        assert_eq!(f.to_string(), "B(s1) ∧ A(2, s3)");
    }

    #[test]
    fn optional_atoms_excluded_by_default() {
        let t = parse_transaction("+B(x) :-1 A(x), C(x)?").unwrap();
        let (_, f) = compose(&[&t]);
        assert_eq!(f.to_string(), "A(x)");
        let mut gen = VarGen::new();
        let renamed = t.freshen(&mut gen);
        let with_opt = compose_with_optionals(&[&renamed]);
        assert_eq!(with_opt.to_string(), "A(x) ∧ C(x)");
    }

    #[test]
    fn composition_is_associative_in_rendering() {
        // compose(T1,T2,T3) equals compose over the same renamed sequence
        // regardless of how we batch the rendering (structural property of
        // the flattening smart constructors).
        let txns = figure3();
        let mut gen = VarGen::new();
        let renamed: Vec<ResourceTransaction> = txns.iter().map(|t| t.freshen(&mut gen)).collect();
        let refs: Vec<&ResourceTransaction> = renamed.iter().collect();
        let all = compose_renamed(&refs);
        let again = compose_renamed(&refs);
        assert_eq!(all, again);
    }

    #[test]
    #[should_panic(expected = "renamed apart")]
    #[cfg(debug_assertions)]
    fn shared_variables_are_rejected_in_debug() {
        let t1 = parse_transaction("-A(x) :-1 A(x)").unwrap();
        let t2 = parse_transaction("-B(x) :-1 B(x)").unwrap(); // same local ids
        let _ = compose_renamed(&[&t1, &t2]);
    }

    #[test]
    fn atom_count_tracks_composed_size() {
        // The paper bounds composed bodies by MySQL's 61-join limit; our
        // measure of "size" is the atom count of the composed formula.
        let txns = figure3();
        let (_, f) = compose(&[&txns[0], &txns[1], &txns[2]]);
        assert_eq!(f.atom_count(), 3);
    }
}
