//! Statements of the unified SQL surface.
//!
//! The paper presents resource transactions as a SQL extension (Figure 1);
//! the engine's other operations — DDL, blind writes, reads with the three
//! §3.2.2 uncertainty semantics, grounding and introspection — complete
//! that dialect into one statement grammar. [`Statement`] is the parsed
//! form every front end produces and the engine's `execute_stmt` consumes;
//! [`ParsedStatement`] additionally carries positional `?` placeholders so
//! a statement can be parsed once and re-bound per execution (prepared
//! statements).
//!
//! The statement classes:
//!
//! | Class      | Syntax                                                        |
//! |------------|---------------------------------------------------------------|
//! | DDL        | `CREATE TABLE R (col INT \| TEXT \| BOOL, …)`, `CREATE INDEX ON R (col)` |
//! | Blind write| `INSERT INTO R VALUES (…), (…)`, `DELETE FROM R VALUES (…)`   |
//! | Read       | `SELECT [PEEK \| POSSIBLE] @v, … \| * FROM R(…), … [WHERE …] [LIMIT n]` |
//! | Resource   | `SELECT … FROM … [WHERE …] CHOOSE 1 FOLLOWED BY ( … )`        |
//! | Control    | `GROUND <id>`, `GROUND ALL`, `CHECKPOINT`, `SHOW METRICS`, `SHOW PENDING`, `SHOW PROFILE`, `SHOW EVENTS [LIMIT n]`, `SHOW REPLICATION`, `PROMOTE` |
//!
//! Placeholders (`?`) may appear anywhere a constant may: in `VALUES`
//! rows, in atom argument positions, on one side of a `WHERE` equality
//! (the other side must be a variable), and inside `FOLLOWED BY` writes.

use qdb_storage::{Schema, Value};

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::transaction::{BodyAtom, ResourceTransaction, UpdateAtom};
use crate::{LogicError, Result};

/// Which §3.2.2 read semantics a `SELECT` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Option 3 (the paper's default): ground interacting pending
    /// transactions first, then answer from the extensional state.
    #[default]
    Collapse,
    /// Option 2 (`SELECT PEEK …`): answer against one possible world
    /// without fixing anything; no stability guarantee.
    Peek,
    /// Option 1 (`SELECT POSSIBLE …`): enumerate possible worlds (bounded
    /// by `LIMIT`, default [`SelectStmt::DEFAULT_WORLD_BOUND`]) and return
    /// the distinct answer sets.
    Possible,
}

/// A parsed read statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// Conjunctive query atoms (never optional — `OPTIONAL` belongs to
    /// resource transactions).
    pub atoms: Vec<Atom>,
    /// Projected variables in `SELECT`-list order; `None` means `*`.
    pub projection: Option<Vec<Var>>,
    /// Read semantics.
    pub mode: ReadMode,
    /// `LIMIT n`: row cap for [`ReadMode::Collapse`] / [`ReadMode::Peek`],
    /// world bound for [`ReadMode::Possible`].
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Possible-world enumeration bound when no `LIMIT` is given.
    pub const DEFAULT_WORLD_BOUND: usize = 64;
}

/// A parsed resource transaction, possibly still containing parameter
/// placeholders (hence not yet a validated [`ResourceTransaction`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnStmt {
    /// The `FOLLOWED BY` writes.
    pub updates: Vec<UpdateAtom>,
    /// The `FROM` items (with `OPTIONAL` flags), `WHERE` already folded in.
    pub body: Vec<BodyAtom>,
}

impl TxnStmt {
    /// Build the validated core form. Fails with
    /// [`LogicError::RangeRestriction`] if an update variable (including a
    /// still-unbound parameter) does not occur in a non-optional body atom.
    pub fn to_transaction(&self) -> Result<ResourceTransaction> {
        ResourceTransaction::new(self.updates.clone(), self.body.clone())
    }
}

/// How `CREATE INDEX` names its column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnRef {
    /// By schema column name.
    Name(String),
    /// By zero-based position.
    Position(usize),
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnRef::Name(n) => write!(f, "{n}"),
            ColumnRef::Position(p) => write!(f, "#{p}"),
        }
    }
}

/// One statement of the unified dialect — the input to
/// `QuantumDb::execute_stmt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE R (a INT, b TEXT, c BOOL)`
    CreateTable(Schema),
    /// `CREATE INDEX ON R (col)`
    CreateIndex {
        /// Indexed relation.
        relation: String,
        /// Indexed column (name or position).
        column: ColumnRef,
    },
    /// `INSERT INTO R VALUES (…), (…)` — blind non-resource inserts.
    Insert {
        /// Target relation.
        relation: String,
        /// Rows; terms are constants once parameters are bound.
        rows: Vec<Vec<Term>>,
    },
    /// `DELETE FROM R VALUES (…), (…)` — blind non-resource deletes.
    Delete {
        /// Target relation.
        relation: String,
        /// Rows; terms are constants once parameters are bound.
        rows: Vec<Vec<Term>>,
    },
    /// `SELECT …` without `CHOOSE` — a read.
    Select(SelectStmt),
    /// `SELECT … CHOOSE 1 FOLLOWED BY (…)` — a resource transaction.
    Transaction(TxnStmt),
    /// `GROUND <id>` — explicitly collapse one pending transaction.
    Ground(u64),
    /// `GROUND ALL` — collapse the whole quantum state.
    GroundAll,
    /// `CHECKPOINT` — append a checkpoint marker to the WAL.
    Checkpoint,
    /// `SHOW METRICS` — engine counters snapshot.
    ShowMetrics,
    /// `SHOW PENDING` — ids of pending transactions.
    ShowPending,
    /// `SHOW PROFILE` — per-class and per-phase latency histograms.
    ShowProfile,
    /// `SHOW EVENTS [LIMIT n]` — recent flight-recorder span events.
    ShowEvents {
        /// `LIMIT n`: how many recent events to return (engine default
        /// when absent).
        limit: Option<usize>,
    },
    /// `SHOW REPLICATION` — replication role, WAL position and per-replica
    /// lag (meaningful on servers; the bare engine reports itself as an
    /// unreplicated primary).
    ShowReplication,
    /// `PROMOTE` — promote a replica server to primary (stops applying the
    /// replication stream, recovers from the local WAL, starts accepting
    /// writes). Only replica servers accept it.
    Promote,
}

impl Statement {
    /// Short class name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable(_) => "CREATE TABLE",
            Statement::CreateIndex { .. } => "CREATE INDEX",
            Statement::Insert { .. } => "INSERT",
            Statement::Delete { .. } => "DELETE",
            Statement::Select(_) => "SELECT",
            Statement::Transaction(_) => "SELECT … CHOOSE 1",
            Statement::Ground(_) => "GROUND",
            Statement::GroundAll => "GROUND ALL",
            Statement::Checkpoint => "CHECKPOINT",
            Statement::ShowMetrics => "SHOW METRICS",
            Statement::ShowPending => "SHOW PENDING",
            Statement::ShowProfile => "SHOW PROFILE",
            Statement::ShowEvents { .. } => "SHOW EVENTS",
            Statement::ShowReplication => "SHOW REPLICATION",
            Statement::Promote => "PROMOTE",
        }
    }
}

/// A parsed statement plus its positional parameter placeholders.
///
/// Parameters are represented as reserved variables (display name `?1`,
/// `?2`, …) inside the statement's atoms and rows; [`ParsedStatement::bind`]
/// substitutes concrete [`Value`]s to produce an executable [`Statement`].
/// A statement with no placeholders can be executed directly via
/// [`ParsedStatement::statement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedStatement {
    pub(crate) stmt: Statement,
    pub(crate) params: Vec<Var>,
}

impl ParsedStatement {
    /// Wrap a statement with no placeholders.
    pub fn unparameterized(stmt: Statement) -> Self {
        ParsedStatement {
            stmt,
            params: Vec::new(),
        }
    }

    /// Number of positional `?` placeholders.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// The statement, if it has no placeholders to bind.
    pub fn statement(&self) -> Result<&Statement> {
        if self.params.is_empty() {
            Ok(&self.stmt)
        } else {
            Err(LogicError::Params {
                expected: self.params.len(),
                got: 0,
            })
        }
    }

    /// The statement template (placeholders appear as `?N` variables).
    pub fn template(&self) -> &Statement {
        &self.stmt
    }

    /// Substitute positional values for the placeholders, producing an
    /// executable statement. `values.len()` must equal
    /// [`ParsedStatement::param_count`].
    pub fn bind(&self, values: &[Value]) -> Result<Statement> {
        if values.len() != self.params.len() {
            return Err(LogicError::Params {
                expected: self.params.len(),
                got: values.len(),
            });
        }
        if self.params.is_empty() {
            return Ok(self.stmt.clone());
        }
        let mut subst = Substitution::new();
        for (var, value) in self.params.iter().zip(values) {
            subst.bind(var, &Term::Const(value.clone()));
        }
        let bind_row =
            |row: &Vec<Term>| -> Vec<Term> { row.iter().map(|t| subst.resolve(t)).collect() };
        Ok(match &self.stmt {
            Statement::Insert { relation, rows } => Statement::Insert {
                relation: relation.clone(),
                rows: rows.iter().map(bind_row).collect(),
            },
            Statement::Delete { relation, rows } => Statement::Delete {
                relation: relation.clone(),
                rows: rows.iter().map(bind_row).collect(),
            },
            Statement::Select(sel) => Statement::Select(SelectStmt {
                atoms: sel.atoms.iter().map(|a| a.apply(&subst)).collect(),
                projection: sel.projection.clone(),
                mode: sel.mode,
                limit: sel.limit,
            }),
            Statement::Transaction(txn) => Statement::Transaction(TxnStmt {
                updates: txn
                    .updates
                    .iter()
                    .map(|u| UpdateAtom {
                        kind: u.kind,
                        atom: u.atom.apply(&subst),
                    })
                    .collect(),
                body: txn
                    .body
                    .iter()
                    .map(|b| BodyAtom {
                        atom: b.atom.apply(&subst),
                        optional: b.optional,
                    })
                    .collect(),
            }),
            other => other.clone(),
        })
    }
}

/// Range restriction for a transaction *template*: update variables must
/// occur in a non-optional body atom, except parameter placeholders, which
/// are constants by execution time.
pub(crate) fn validate_template(txn: &TxnStmt, params: &[Var]) -> Result<()> {
    let bound: std::collections::BTreeSet<&Var> = txn
        .body
        .iter()
        .filter(|b| !b.optional)
        .flat_map(|b| b.atom.vars())
        .chain(params.iter())
        .collect();
    for u in &txn.updates {
        for v in u.atom.vars() {
            if !bound.contains(v) {
                return Err(LogicError::RangeRestriction {
                    var: v.name().to_string(),
                });
            }
        }
    }
    Ok(())
}
