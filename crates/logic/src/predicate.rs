//! Unification predicates (Definition 3.3).
//!
//! The unification predicate `ϕ(b1, b2)` is the conjunction of equality
//! constraints corresponding to the variable substitutions in the mgu of
//! `b1` and `b2`. It is trivially false when no mgu exists and trivially
//! true when the mgu is empty. These predicates are the building blocks of
//! composed transaction bodies (Lemma 3.4 / Theorem 3.5).

use std::fmt;

use crate::atom::Atom;
use crate::term::{Term, Var};
use crate::unify::mgu;
use crate::valuation::Valuation;
use crate::{LogicError, Result};

/// A single equality constraint between two terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqConstraint {
    /// Left-hand side.
    pub lhs: Term,
    /// Right-hand side.
    pub rhs: Term,
}

impl EqConstraint {
    /// Build a constraint.
    pub fn new(lhs: Term, rhs: Term) -> Self {
        EqConstraint { lhs, rhs }
    }

    /// Evaluate under a (total, for the involved variables) valuation.
    pub fn eval(&self, val: &Valuation) -> Result<bool> {
        let l = val.resolve(&self.lhs).ok_or_else(|| unbound(&self.lhs))?;
        let r = val.resolve(&self.rhs).ok_or_else(|| unbound(&self.rhs))?;
        Ok(l == r)
    }

    /// Evaluate if both sides are resolvable; `None` when undetermined.
    pub fn eval_partial(&self, val: &Valuation) -> Option<bool> {
        Some(val.resolve(&self.lhs)? == val.resolve(&self.rhs)?)
    }

    /// Variables mentioned by the constraint.
    pub fn vars(&self) -> impl Iterator<Item = &Var> + '_ {
        self.lhs.as_var().into_iter().chain(self.rhs.as_var())
    }
}

fn unbound(t: &Term) -> LogicError {
    LogicError::UnboundVariable {
        var: t
            .as_var()
            .map_or_else(|| "?".to_string(), |v| v.name().to_string()),
    }
}

impl fmt::Display for EqConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} = {})", self.lhs, self.rhs)
    }
}

/// A unification predicate: `False`, or a conjunction of equality
/// constraints (empty conjunction = `True`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifPredicate {
    /// The atoms do not unify at all.
    False,
    /// Conjunction of equalities (empty = trivially true).
    Conj(Vec<EqConstraint>),
}

impl UnifPredicate {
    /// Compute `ϕ(a, b)` per Definition 3.3.
    ///
    /// Constraints are emitted in variable-id order of the mgu's bindings,
    /// which makes the rendering deterministic.
    pub fn of(a: &Atom, b: &Atom) -> UnifPredicate {
        match mgu(a, b) {
            None => UnifPredicate::False,
            Some(theta) => UnifPredicate::Conj(
                theta
                    .iter()
                    .map(|(v, t)| EqConstraint::new(Term::Var(v.clone()), t.clone()))
                    .collect(),
            ),
        }
    }

    /// Trivially true predicate.
    pub fn top() -> UnifPredicate {
        UnifPredicate::Conj(Vec::new())
    }

    /// Is this trivially true (empty conjunction)?
    pub fn is_trivially_true(&self) -> bool {
        matches!(self, UnifPredicate::Conj(c) if c.is_empty())
    }

    /// Is this trivially false (no mgu)?
    pub fn is_trivially_false(&self) -> bool {
        matches!(self, UnifPredicate::False)
    }

    /// Evaluate under a valuation; errors on unbound variables.
    pub fn eval(&self, val: &Valuation) -> Result<bool> {
        match self {
            UnifPredicate::False => Ok(false),
            UnifPredicate::Conj(cs) => {
                for c in cs {
                    if !c.eval(val)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Three-valued partial evaluation: `Some(b)` when decided, `None`
    /// when some variable is still unbound and the bound prefix holds.
    pub fn eval_partial(&self, val: &Valuation) -> Option<bool> {
        match self {
            UnifPredicate::False => Some(false),
            UnifPredicate::Conj(cs) => {
                let mut undetermined = false;
                for c in cs {
                    match c.eval_partial(val) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => undetermined = true,
                    }
                }
                if undetermined {
                    None
                } else {
                    Some(true)
                }
            }
        }
    }

    /// Variables mentioned by the predicate.
    pub fn vars(&self) -> Vec<&Var> {
        match self {
            UnifPredicate::False => Vec::new(),
            UnifPredicate::Conj(cs) => cs.iter().flat_map(EqConstraint::vars).collect(),
        }
    }
}

impl fmt::Display for UnifPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifPredicate::False => write!(f, "false"),
            UnifPredicate::Conj(cs) if cs.is_empty() => write!(f, "true"),
            UnifPredicate::Conj(cs) => {
                write!(f, "{{")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarGen;
    use qdb_storage::Value;

    /// The Definition 3.3 worked example: R(1, v1, v2) vs R(v3, 2, v4)
    /// gives ϕ = (v1 = 2) ∧ (v2 = v4) ∧ (v3 = 1).
    #[test]
    fn paper_example_predicate() {
        let mut g = VarGen::new();
        let v1 = g.fresh("v1");
        let v2 = g.fresh("v2");
        let v3 = g.fresh("v3");
        let v4 = g.fresh("v4");
        let a = Atom::new(
            "R",
            vec![Term::val(1), Term::Var(v1.clone()), Term::Var(v2.clone())],
        );
        let b = Atom::new(
            "R",
            vec![Term::Var(v3.clone()), Term::val(2), Term::Var(v4.clone())],
        );
        let phi = UnifPredicate::of(&a, &b);
        assert_eq!(phi.to_string(), "{(v1 = 2) ∧ (v2 = v4) ∧ (v3 = 1)}");
        // Satisfied by v1=2, v2=v4=anything-equal, v3=1.
        let val: Valuation = [
            (v1, Value::from(2)),
            (v2, Value::from(9)),
            (v3, Value::from(1)),
            (v4, Value::from(9)),
        ]
        .into_iter()
        .collect();
        assert!(phi.eval(&val).unwrap());
    }

    #[test]
    fn no_mgu_is_trivially_false() {
        let a = Atom::new("A", vec![Term::val(1)]);
        let b = Atom::new("A", vec![Term::val(2)]);
        let phi = UnifPredicate::of(&a, &b);
        assert!(phi.is_trivially_false());
        assert_eq!(phi.to_string(), "false");
        assert!(!phi.eval(&Valuation::new()).unwrap());
        assert_eq!(phi.eval_partial(&Valuation::new()), Some(false));
    }

    #[test]
    fn empty_mgu_is_trivially_true() {
        let a = Atom::new("A", vec![Term::val(1)]);
        let phi = UnifPredicate::of(&a, &a.clone());
        assert!(phi.is_trivially_true());
        assert_eq!(phi.to_string(), "true");
        assert!(phi.eval(&Valuation::new()).unwrap());
    }

    #[test]
    fn eval_errors_on_unbound() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let a = Atom::new("A", vec![Term::Var(x.clone())]);
        let b = Atom::new("A", vec![Term::val(1)]);
        let phi = UnifPredicate::of(&a, &b);
        assert!(phi.eval(&Valuation::new()).is_err());
        assert_eq!(phi.eval_partial(&Valuation::new()), None);
        let val: Valuation = [(x, Value::from(1))].into_iter().collect();
        assert!(phi.eval(&val).unwrap());
    }

    #[test]
    fn partial_eval_short_circuits_on_false() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let a = Atom::new("A", vec![Term::Var(x.clone()), Term::Var(y.clone())]);
        let b = Atom::new("A", vec![Term::val(1), Term::val(2)]);
        let phi = UnifPredicate::of(&a, &b);
        // x bound wrongly decides the whole predicate even though y unbound.
        let val: Valuation = [(x, Value::from(9))].into_iter().collect();
        assert_eq!(phi.eval_partial(&val), Some(false));
    }
}
