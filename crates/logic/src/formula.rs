//! Composed-body formulas (Lemma 3.4 / Theorem 3.5).
//!
//! The body of a composed transaction is not a plain conjunction of atoms:
//! inserts of earlier transactions contribute *disjunctions*
//! `(b ∨ ϕ(b, i))` — the atom may ground on the inserted tuple — and
//! deletes contribute *negated unification predicates* `¬ϕ(b, d)` — the
//! atom must not ground on the deleted tuple. `Formula` is exactly that
//! fragment: positive atoms, equality predicates and their negations,
//! closed under conjunction and disjunction.

use std::fmt;

use qdb_storage::Database;

use crate::atom::Atom;
use crate::predicate::UnifPredicate;
use crate::term::Var;
use crate::valuation::Valuation;
use crate::Result;

/// A formula over atoms and unification predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Trivially true.
    True,
    /// Trivially false.
    False,
    /// A relational atom that must hold in the extensional database.
    Atom(Atom),
    /// A conjunction of equality constraints.
    Pred(UnifPredicate),
    /// A negated conjunction of equality constraints (`¬ϕ`).
    NotPred(UnifPredicate),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// Smart conjunction: flattens nested `And`s and simplifies trivia.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction: flattens nested `Or`s and simplifies trivia.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Lift a unification predicate, simplifying trivial cases.
    pub fn pred(p: UnifPredicate) -> Formula {
        if p.is_trivially_false() {
            Formula::False
        } else if p.is_trivially_true() {
            Formula::True
        } else {
            Formula::Pred(p)
        }
    }

    /// Lift a *negated* unification predicate, simplifying trivial cases.
    pub fn not_pred(p: UnifPredicate) -> Formula {
        if p.is_trivially_false() {
            Formula::True
        } else if p.is_trivially_true() {
            Formula::False
        } else {
            Formula::NotPred(p)
        }
    }

    /// All variables occurring in the formula (with repeats).
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.extend(a.vars().cloned()),
            Formula::Pred(p) | Formula::NotPred(p) => {
                out.extend(p.vars().into_iter().cloned());
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// Count atoms (the paper's measure of composed-body size, bounded by
    /// MySQL's 61-join limit in the prototype).
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::atom_count).sum(),
            _ => 0,
        }
    }

    /// Evaluate the formula under a total valuation against an extensional
    /// database. Used by tests to check solver results against the
    /// paper-faithful formula semantics.
    pub fn eval(&self, val: &Valuation, db: &Database) -> Result<bool> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(a) => {
                let tuple = a.ground(val)?;
                Ok(db.contains(&a.relation, &tuple))
            }
            Formula::Pred(p) => p.eval(val),
            Formula::NotPred(p) => Ok(!p.eval(val)?),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(val, db)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(val, db)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Pred(p) => write!(f, "{p}"),
            Formula::NotPred(p) => write!(f, "¬{p}"),
            Formula::And(fs) => {
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{part}")?;
                }
                Ok(())
            }
            Formula::Or(fs) => {
                write!(f, "{{")?;
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{part}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, VarGen};
    use qdb_storage::{Schema, Value, ValueType};

    fn db_with_seat() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("Available", qdb_storage::tuple![1, "1A"])
            .unwrap();
        db
    }

    #[test]
    fn smart_constructors_simplify() {
        let a = Formula::Atom(Atom::new("A", vec![Term::val(1)]));
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::True, a.clone()]), a);
        assert_eq!(
            Formula::and(vec![Formula::False, a.clone()]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::True, a.clone()]), Formula::True);
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
        // Nested flattening.
        let nested = Formula::and(vec![Formula::And(vec![a.clone(), a.clone()]), a.clone()]);
        assert_eq!(nested.atom_count(), 3);
    }

    #[test]
    fn pred_lifting_respects_trivia() {
        assert_eq!(Formula::pred(UnifPredicate::False), Formula::False);
        assert_eq!(Formula::pred(UnifPredicate::top()), Formula::True);
        assert_eq!(Formula::not_pred(UnifPredicate::False), Formula::True);
        assert_eq!(Formula::not_pred(UnifPredicate::top()), Formula::False);
    }

    #[test]
    fn eval_atom_against_database() {
        let db = db_with_seat();
        let mut g = VarGen::new();
        let s = g.fresh("s");
        let atom = Formula::Atom(Atom::new(
            "Available",
            vec![Term::val(1), Term::Var(s.clone())],
        ));
        let good: Valuation = [(s.clone(), Value::from("1A"))].into_iter().collect();
        let bad: Valuation = [(s, Value::from("9Z"))].into_iter().collect();
        assert!(atom.eval(&good, &db).unwrap());
        assert!(!atom.eval(&bad, &db).unwrap());
    }

    #[test]
    fn eval_connectives() {
        let db = db_with_seat();
        let val = Valuation::new();
        let t = Formula::True;
        let f = Formula::False;
        assert!(Formula::And(vec![t.clone(), t.clone()])
            .eval(&val, &db)
            .unwrap());
        assert!(!Formula::And(vec![t.clone(), f.clone()])
            .eval(&val, &db)
            .unwrap());
        assert!(Formula::Or(vec![f.clone(), t.clone()])
            .eval(&val, &db)
            .unwrap());
        assert!(!Formula::Or(vec![f.clone(), f]).eval(&val, &db).unwrap());
    }

    #[test]
    fn display_uses_braces_for_disjunction() {
        let mut g = VarGen::new();
        let f2 = g.fresh("f2");
        let s2 = g.fresh("s2");
        let a = Formula::Atom(Atom::new(
            "A",
            vec![Term::Var(f2.clone()), Term::Var(s2.clone())],
        ));
        let phi = UnifPredicate::of(
            &Atom::new("A", vec![Term::Var(f2), Term::Var(s2)]),
            &Atom::new("A", vec![Term::val(1), Term::val("1A")]),
        );
        let or = Formula::or(vec![a, Formula::pred(phi)]);
        assert_eq!(or.to_string(), "{A(f2, s2) ∨ {(f2 = 1) ∧ (s2 = '1A')}}");
    }

    #[test]
    fn vars_and_atom_count() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let a = Formula::Atom(Atom::new("A", vec![Term::Var(x.clone())]));
        let f = Formula::and(vec![a.clone(), Formula::or(vec![a.clone(), a])]);
        assert_eq!(f.atom_count(), 3);
        assert_eq!(f.vars().len(), 3);
        assert!(f.vars().iter().all(|v| *v == x));
    }
}
