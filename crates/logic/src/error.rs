//! Logic-layer error type.

use std::fmt;

/// Errors raised by the logic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// Text failed to parse; includes position and reason.
    Parse {
        /// Byte offset in the input.
        at: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A transaction violates the range-restriction requirement (§2: every
    /// variable of `U` must occur in `B`; we additionally require it to
    /// occur in a *non-optional* atom, since optional atoms may go
    /// unsatisfied and therefore cannot bind update variables).
    RangeRestriction {
        /// The offending variable's display name.
        var: String,
    },
    /// A formula was evaluated with an unbound variable.
    UnboundVariable {
        /// The offending variable's display name.
        var: String,
    },
    /// A prepared statement was bound with the wrong number of parameters
    /// (or executed with placeholders still unbound).
    Params {
        /// Placeholders in the statement.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Malformed bytes handed to the transaction codec.
    Codec(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { at, reason } => write!(f, "parse error at byte {at}: {reason}"),
            LogicError::RangeRestriction { var } => write!(
                f,
                "range restriction violated: update variable '{var}' does not occur in a non-optional body atom"
            ),
            LogicError::UnboundVariable { var } => {
                write!(f, "variable '{var}' is unbound at evaluation time")
            }
            LogicError::Params { expected, got } => write!(
                f,
                "statement takes {expected} parameter(s), {got} bound"
            ),
            LogicError::Codec(msg) => write!(f, "transaction codec error: {msg}"),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_variable() {
        let e = LogicError::RangeRestriction { var: "s1".into() };
        assert!(e.to_string().contains("s1"));
        let e = LogicError::UnboundVariable { var: "f".into() };
        assert!(e.to_string().contains('f'));
    }
}
