//! Valuations: maps from variables to data values.
//!
//! A *grounding* (§2 uses "grounding" and "value assignment"
//! interchangeably) is a valuation applied to a transaction body.

use std::collections::BTreeMap;

use qdb_storage::Value;

use crate::term::{Term, Var};

/// A (partial) assignment of data values to variables.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Valuation {
    map: BTreeMap<Var, Value>,
}

impl Valuation {
    /// Empty valuation.
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Value of `v`, if bound.
    pub fn get(&self, v: &Var) -> Option<&Value> {
        self.map.get(v)
    }

    /// Bind `v` to `value`, returning the previous binding if any.
    pub fn bind(&mut self, v: Var, value: Value) -> Option<Value> {
        self.map.insert(v, value)
    }

    /// Remove the binding of `v`.
    pub fn unbind(&mut self, v: &Var) -> Option<Value> {
        self.map.remove(v)
    }

    /// Is `v` bound?
    pub fn contains(&self, v: &Var) -> bool {
        self.map.contains_key(v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> + '_ {
        self.map.iter()
    }

    /// Resolve a term to a value, if possible.
    pub fn resolve(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.get(v).cloned(),
        }
    }

    /// Merge another valuation in; returns `false` (and leaves `self`
    /// unspecified only in already-agreed bindings) if the two disagree on
    /// a shared variable.
    pub fn merge(&mut self, other: &Valuation) -> bool {
        for (v, val) in other.iter() {
            match self.map.get(v) {
                Some(existing) if existing != val => return false,
                Some(_) => {}
                None => {
                    self.map.insert(v.clone(), val.clone());
                }
            }
        }
        true
    }
}

impl FromIterator<(Var, Value)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Var, Value)>>(iter: I) -> Self {
        Valuation {
            map: iter.into_iter().collect(),
        }
    }
}

impl std::fmt::Display for Valuation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (v, val)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {val}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarGen;

    #[test]
    fn bind_get_unbind() {
        let mut g = VarGen::new();
        let v = g.fresh("s");
        let mut val = Valuation::new();
        assert!(val.is_empty());
        assert_eq!(val.bind(v.clone(), Value::from("1A")), None);
        assert_eq!(val.get(&v), Some(&Value::from("1A")));
        assert_eq!(
            val.bind(v.clone(), Value::from("1B")),
            Some(Value::from("1A"))
        );
        assert_eq!(val.unbind(&v), Some(Value::from("1B")));
        assert!(!val.contains(&v));
    }

    #[test]
    fn resolve_terms() {
        let mut g = VarGen::new();
        let v = g.fresh("s");
        let mut val = Valuation::new();
        assert_eq!(val.resolve(&Term::val(3)), Some(Value::from(3)));
        assert_eq!(val.resolve(&Term::Var(v.clone())), None);
        val.bind(v.clone(), Value::from(9));
        assert_eq!(val.resolve(&Term::Var(v)), Some(Value::from(9)));
    }

    #[test]
    fn merge_detects_conflicts() {
        let mut g = VarGen::new();
        let (a, b) = (g.fresh("a"), g.fresh("b"));
        let mut v1: Valuation = [(a.clone(), Value::from(1))].into_iter().collect();
        let v2: Valuation = [(a.clone(), Value::from(1)), (b.clone(), Value::from(2))]
            .into_iter()
            .collect();
        assert!(v1.merge(&v2));
        assert_eq!(v1.len(), 2);
        let v3: Valuation = [(a, Value::from(9))].into_iter().collect();
        assert!(!v1.merge(&v3));
    }

    #[test]
    fn display_lists_bindings() {
        let mut g = VarGen::new();
        let v = g.fresh("f");
        let val: Valuation = [(v, Value::from(1))].into_iter().collect();
        assert_eq!(val.to_string(), "{f -> 1}");
    }
}
