//! Binary serialization of resource transactions.
//!
//! Used for the WAL's pending-transactions records (§4 "Recovery": pending
//! resource transactions are serialized into a special table before commit)
//! — variable ids are preserved exactly so that the recovered in-memory
//! quantum state matches the pre-crash state.

use bytes::{Buf, BufMut, BytesMut};

use qdb_storage::codec as scodec;

use crate::atom::Atom;
use crate::term::{Term, Var};
use crate::transaction::{BodyAtom, ResourceTransaction, UpdateAtom, UpdateKind};
use crate::{LogicError, Result};

const T_VAR: u8 = 0;
const T_CONST: u8 = 1;

fn put_term(buf: &mut BytesMut, t: &Term) {
    match t {
        Term::Var(v) => {
            buf.put_u8(T_VAR);
            buf.put_u32_le(v.id());
            scodec::put_string(buf, v.name());
        }
        Term::Const(v) => {
            buf.put_u8(T_CONST);
            scodec::put_value(buf, v);
        }
    }
}

fn get_term(buf: &mut impl Buf) -> Result<Term> {
    if buf.remaining() < 1 {
        return Err(LogicError::Codec("truncated term".into()));
    }
    match buf.get_u8() {
        T_VAR => {
            if buf.remaining() < 4 {
                return Err(LogicError::Codec("truncated var".into()));
            }
            let id = buf.get_u32_le();
            let name = scodec::get_string(buf).map_err(|e| LogicError::Codec(e.to_string()))?;
            Ok(Term::Var(Var::new(id, name)))
        }
        T_CONST => Ok(Term::Const(
            scodec::get_value(buf).map_err(|e| LogicError::Codec(e.to_string()))?,
        )),
        t => Err(LogicError::Codec(format!("unknown term tag {t}"))),
    }
}

/// Write an atom.
pub fn put_atom(buf: &mut BytesMut, a: &Atom) {
    scodec::put_string(buf, &a.relation);
    buf.put_u32_le(a.terms.len() as u32);
    for t in &a.terms {
        put_term(buf, t);
    }
}

/// Read an atom.
pub fn get_atom(buf: &mut impl Buf) -> Result<Atom> {
    let relation = scodec::get_string(buf).map_err(|e| LogicError::Codec(e.to_string()))?;
    if buf.remaining() < 4 {
        return Err(LogicError::Codec("truncated atom arity".into()));
    }
    let n = buf.get_u32_le() as usize;
    if n > 1 << 16 {
        return Err(LogicError::Codec(format!("implausible arity {n}")));
    }
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(get_term(buf)?);
    }
    Ok(Atom::new(relation, terms))
}

/// Serialize a transaction to bytes.
pub fn encode_transaction(t: &ResourceTransaction) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u32_le(t.updates.len() as u32);
    for u in &t.updates {
        buf.put_u8(match u.kind {
            UpdateKind::Insert => 0,
            UpdateKind::Delete => 1,
        });
        put_atom(&mut buf, &u.atom);
    }
    buf.put_u32_le(t.body.len() as u32);
    for b in &t.body {
        buf.put_u8(u8::from(b.optional));
        put_atom(&mut buf, &b.atom);
    }
    buf.to_vec()
}

/// Deserialize a transaction from bytes.
pub fn decode_transaction(mut bytes: &[u8]) -> Result<ResourceTransaction> {
    let buf = &mut bytes;
    if buf.remaining() < 4 {
        return Err(LogicError::Codec("truncated update count".into()));
    }
    let nu = buf.get_u32_le() as usize;
    if nu > 1 << 16 {
        return Err(LogicError::Codec(format!("implausible update count {nu}")));
    }
    let mut updates = Vec::with_capacity(nu);
    for _ in 0..nu {
        if buf.remaining() < 1 {
            return Err(LogicError::Codec("truncated update kind".into()));
        }
        let kind = match buf.get_u8() {
            0 => UpdateKind::Insert,
            1 => UpdateKind::Delete,
            t => return Err(LogicError::Codec(format!("unknown update kind {t}"))),
        };
        updates.push(UpdateAtom {
            kind,
            atom: get_atom(buf)?,
        });
    }
    if buf.remaining() < 4 {
        return Err(LogicError::Codec("truncated body count".into()));
    }
    let nb = buf.get_u32_le() as usize;
    if nb > 1 << 16 {
        return Err(LogicError::Codec(format!("implausible body count {nb}")));
    }
    let mut body = Vec::with_capacity(nb);
    for _ in 0..nb {
        if buf.remaining() < 1 {
            return Err(LogicError::Codec("truncated optional flag".into()));
        }
        let optional = buf.get_u8() != 0;
        body.push(BodyAtom {
            atom: get_atom(buf)?,
            optional,
        });
    }
    if buf.remaining() != 0 {
        return Err(LogicError::Codec("trailing bytes".into()));
    }
    ResourceTransaction::new(updates, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transaction;

    #[test]
    fn transaction_roundtrip_preserves_everything() {
        let t = parse_transaction(
            "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
             Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap();
        let bytes = encode_transaction(&t);
        let back = decode_transaction(&bytes).unwrap();
        assert_eq!(t, back);
        // Variable ids — not just names — must survive.
        let ids_a: Vec<u32> = t.vars().iter().map(Var::id).collect();
        let ids_b: Vec<u32> = back.vars().iter().map(Var::id).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn truncation_yields_errors_not_panics() {
        let t = parse_transaction("+B(M, x) :-1 A(x)").unwrap();
        let bytes = encode_transaction(&t);
        for cut in 0..bytes.len() {
            assert!(decode_transaction(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let t = parse_transaction("+B(M, x) :-1 A(x)").unwrap();
        let mut bytes = encode_transaction(&t);
        bytes.push(0);
        assert!(decode_transaction(&bytes).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode_transaction(&[0xFF; 16]).is_err());
        assert!(decode_transaction(&[]).is_err());
    }
}
