//! Resource transactions: `U :-1 B` (§2).
//!
//! A resource transaction consists of a *body* `B` — a conjunction of
//! relational atoms, some marked **optional** (soft preferences) — and an
//! *update portion* `U` — a set of blind single-tuple inserts and deletes
//! (the SQL form's `FOLLOWED BY` block). `CHOOSE 1` is implicit: exactly
//! one grounding of the body is eventually chosen, and the updates are
//! executed under it.

use std::collections::BTreeSet;
use std::fmt;

use qdb_storage::WriteOp;

use crate::atom::Atom;
use crate::term::{Term, Var, VarGen};
use crate::valuation::Valuation;
use crate::{LogicError, Result};

/// Insert or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// `+R(…)`
    Insert,
    /// `-R(…)`
    Delete,
}

/// One atom of the update portion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateAtom {
    /// Insert or delete.
    pub kind: UpdateKind,
    /// The written atom (variables must be range-restricted).
    pub atom: Atom,
}

impl UpdateAtom {
    /// Build an insert.
    pub fn insert(atom: Atom) -> Self {
        UpdateAtom {
            kind: UpdateKind::Insert,
            atom,
        }
    }

    /// Build a delete.
    pub fn delete(atom: Atom) -> Self {
        UpdateAtom {
            kind: UpdateKind::Delete,
            atom,
        }
    }

    /// Ground into a storage write op under `val`.
    pub fn to_write_op(&self, val: &Valuation) -> Result<WriteOp> {
        let tuple = self.atom.ground(val)?;
        Ok(match self.kind {
            UpdateKind::Insert => WriteOp::insert(self.atom.relation.as_ref(), tuple),
            UpdateKind::Delete => WriteOp::delete(self.atom.relation.as_ref(), tuple),
        })
    }
}

impl fmt::Display for UpdateAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            UpdateKind::Insert => write!(f, "+{}", self.atom),
            UpdateKind::Delete => write!(f, "-{}", self.atom),
        }
    }
}

/// One atom of the body, possibly optional (rendered with a trailing `?`;
/// the paper underlines optional atoms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodyAtom {
    /// The constraint atom.
    pub atom: Atom,
    /// Soft preference rather than hard constraint?
    pub optional: bool,
}

impl BodyAtom {
    /// A hard (non-optional) body atom.
    pub fn required(atom: Atom) -> Self {
        BodyAtom {
            atom,
            optional: false,
        }
    }

    /// An optional body atom.
    pub fn optional(atom: Atom) -> Self {
        BodyAtom {
            atom,
            optional: true,
        }
    }
}

impl fmt::Display for BodyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.atom, if self.optional { "?" } else { "" })
    }
}

/// A resource transaction `U :-1 B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceTransaction {
    /// The update portion `U` (blind writes, executed under the chosen
    /// grounding).
    pub updates: Vec<UpdateAtom>,
    /// The body `B` (conjunction of constraint atoms).
    pub body: Vec<BodyAtom>,
}

impl ResourceTransaction {
    /// Build and validate a transaction.
    pub fn new(updates: Vec<UpdateAtom>, body: Vec<BodyAtom>) -> Result<Self> {
        let txn = ResourceTransaction { updates, body };
        txn.validate()?;
        Ok(txn)
    }

    /// Range restriction (§2): every variable of `U` must occur in `B` —
    /// and specifically in a **non-optional** atom, because optional atoms
    /// may go unsatisfied and so cannot bind update variables.
    pub fn validate(&self) -> Result<()> {
        let required: BTreeSet<&Var> = self
            .body
            .iter()
            .filter(|b| !b.optional)
            .flat_map(|b| b.atom.vars())
            .collect();
        for u in &self.updates {
            for v in u.atom.vars() {
                if !required.contains(v) {
                    return Err(LogicError::RangeRestriction {
                        var: v.name().to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Non-optional body atoms.
    pub fn required_body(&self) -> impl Iterator<Item = &BodyAtom> + '_ {
        self.body.iter().filter(|b| !b.optional)
    }

    /// Optional body atoms.
    pub fn optional_body(&self) -> impl Iterator<Item = &BodyAtom> + '_ {
        self.body.iter().filter(|b| b.optional)
    }

    /// All distinct variables, in first-occurrence order (body first, which
    /// by range restriction covers the updates too).
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let atoms = self
            .body
            .iter()
            .map(|b| &b.atom)
            .chain(self.updates.iter().map(|u| &u.atom));
        for atom in atoms {
            for v in atom.vars() {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Rename all variables apart using `gen`, preserving display names.
    /// Composition (Lemma 3.4) assumes transactions share no variables;
    /// the engine freshens every admitted transaction through its own
    /// generator.
    ///
    /// Renaming uses a direct old-id → new-var map (not a resolving
    /// [`crate::Substitution`]) so that overlapping old/new id ranges cannot
    /// cause capture.
    pub fn freshen(&self, gen: &mut VarGen) -> ResourceTransaction {
        let map: std::collections::BTreeMap<u32, Var> = self
            .vars()
            .into_iter()
            .map(|v| (v.id(), gen.fresh(v.name())))
            .collect();
        let rename = |atom: &Atom| -> Atom {
            Atom::new(
                atom.relation.as_ref(),
                atom.terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Term::Var(map[&v.id()].clone()),
                        Term::Const(c) => Term::Const(c.clone()),
                    })
                    .collect(),
            )
        };
        ResourceTransaction {
            updates: self
                .updates
                .iter()
                .map(|u| UpdateAtom {
                    kind: u.kind,
                    atom: rename(&u.atom),
                })
                .collect(),
            body: self
                .body
                .iter()
                .map(|b| BodyAtom {
                    atom: rename(&b.atom),
                    optional: b.optional,
                })
                .collect(),
        }
    }

    /// Ground the update portion into storage write ops under `val`.
    pub fn write_ops(&self, val: &Valuation) -> Result<Vec<WriteOp>> {
        self.updates.iter().map(|u| u.to_write_op(val)).collect()
    }

    /// Inserts of the update portion.
    pub fn inserts(&self) -> impl Iterator<Item = &UpdateAtom> + '_ {
        self.updates.iter().filter(|u| u.kind == UpdateKind::Insert)
    }

    /// Deletes of the update portion.
    pub fn deletes(&self) -> impl Iterator<Item = &UpdateAtom> + '_ {
        self.updates.iter().filter(|u| u.kind == UpdateKind::Delete)
    }
}

impl fmt::Display for ResourceTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, u) in self.updates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, " :-1 ")?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_storage::Value;

    /// Mickey's running-example transaction:
    /// `-A(f1, s1), +B('M', f1, s1) :-1 A(f1, s1), B('G', f1, s2)?, Adj(s1, s2)?`
    fn mickey(gen: &mut VarGen) -> ResourceTransaction {
        let f1 = gen.fresh("f1");
        let s1 = gen.fresh("s1");
        let s2 = gen.fresh("s2");
        let a = Atom::new("A", vec![Term::Var(f1.clone()), Term::Var(s1.clone())]);
        let b_g = Atom::new(
            "B",
            vec![Term::val("G"), Term::Var(f1.clone()), Term::Var(s2.clone())],
        );
        let adj = Atom::new("Adj", vec![Term::Var(s1.clone()), Term::Var(s2)]);
        let b_m = Atom::new("B", vec![Term::val("M"), Term::Var(f1), Term::Var(s1)]);
        ResourceTransaction::new(
            vec![UpdateAtom::delete(a.clone()), UpdateAtom::insert(b_m)],
            vec![
                BodyAtom::required(a),
                BodyAtom::optional(b_g),
                BodyAtom::optional(adj),
            ],
        )
        .unwrap()
    }

    #[test]
    fn display_round_trips_notation() {
        let mut g = VarGen::new();
        let t = mickey(&mut g);
        assert_eq!(
            t.to_string(),
            "-A(f1, s1), +B('M', f1, s1) :-1 A(f1, s1), B('G', f1, s2)?, Adj(s1, s2)?"
        );
    }

    #[test]
    fn range_restriction_enforced() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        // +B(y) with body A(x): y unbound.
        let bad = ResourceTransaction::new(
            vec![UpdateAtom::insert(Atom::new(
                "B",
                vec![Term::Var(y.clone())],
            ))],
            vec![BodyAtom::required(Atom::new(
                "A",
                vec![Term::Var(x.clone())],
            ))],
        );
        assert!(matches!(bad, Err(LogicError::RangeRestriction { .. })));
        // Update var appearing only in an *optional* atom is also rejected.
        let bad2 = ResourceTransaction::new(
            vec![UpdateAtom::insert(Atom::new(
                "B",
                vec![Term::Var(y.clone())],
            ))],
            vec![
                BodyAtom::required(Atom::new("A", vec![Term::Var(x)])),
                BodyAtom::optional(Atom::new("A", vec![Term::Var(y)])),
            ],
        );
        assert!(matches!(bad2, Err(LogicError::RangeRestriction { .. })));
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let mut g = VarGen::new();
        let t = mickey(&mut g);
        let vars = t.vars();
        let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["f1", "s1", "s2"]);
    }

    #[test]
    fn freshen_renames_apart_but_preserves_structure() {
        let mut g = VarGen::new();
        let t = mickey(&mut g);
        let mut engine_gen = VarGen::starting_at(100);
        let fresh = t.freshen(&mut engine_gen);
        assert_eq!(fresh.to_string(), t.to_string()); // names preserved
        let old: BTreeSet<u32> = t.vars().iter().map(Var::id).collect();
        let new: BTreeSet<u32> = fresh.vars().iter().map(Var::id).collect();
        assert!(old.is_disjoint(&new));
        assert!(new.iter().all(|&id| id >= 100));
        fresh.validate().unwrap();
    }

    #[test]
    fn write_ops_ground_updates() {
        let mut g = VarGen::new();
        let t = mickey(&mut g);
        let vars = t.vars();
        let val: Valuation = [
            (vars[0].clone(), Value::from(123)),
            (vars[1].clone(), Value::from("5A")),
        ]
        .into_iter()
        .collect();
        let ops = t.write_ops(&val).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].to_string(), "-A(123, '5A')");
        assert_eq!(ops[1].to_string(), "+B('M', 123, '5A')");
        assert_eq!(t.inserts().count(), 1);
        assert_eq!(t.deletes().count(), 1);
    }

    #[test]
    fn write_ops_need_full_grounding() {
        let mut g = VarGen::new();
        let t = mickey(&mut g);
        assert!(t.write_ops(&Valuation::new()).is_err());
    }
}
