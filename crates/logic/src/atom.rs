//! Relational atoms.

use std::fmt;
use std::sync::Arc;

use qdb_storage::{PatTerm, Pattern, Tuple};

use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::valuation::Valuation;
use crate::LogicError;

/// A relational atom: `Relation(t1, …, tn)` over terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: Arc<str>,
    /// One term per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl AsRef<str>, terms: Vec<Term>) -> Self {
        Atom {
            relation: Arc::from(relation.as_ref()),
            terms,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables occurring in the atom, in positional order (may repeat).
    pub fn vars(&self) -> impl Iterator<Item = &Var> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// True when no variables occur.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Apply a substitution to every term.
    pub fn apply(&self, s: &Substitution) -> Atom {
        Atom {
            relation: Arc::clone(&self.relation),
            terms: self.terms.iter().map(|t| s.resolve(t)).collect(),
        }
    }

    /// Ground the atom into a tuple under `val`. Errors on unbound
    /// variables.
    pub fn ground(&self, val: &Valuation) -> Result<Tuple, LogicError> {
        self.terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Ok(c.clone()),
                Term::Var(v) => val
                    .get(v)
                    .cloned()
                    .ok_or_else(|| LogicError::UnboundVariable {
                        var: v.name().to_string(),
                    }),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Tuple::from)
    }

    /// Convert to a storage-layer query pattern, mapping variables by their
    /// numeric id. Variables already bound in `val` become constants.
    pub fn to_pattern(&self, val: &Valuation) -> Pattern {
        let terms = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => PatTerm::Const(c.clone()),
                Term::Var(v) => match val.get(v) {
                    Some(c) => PatTerm::Const(c.clone()),
                    None => PatTerm::Var(v.id()),
                },
            })
            .collect();
        Pattern::new(self.relation.as_ref(), terms)
    }

    /// Could this atom and `other` ever denote the same tuple? Same
    /// relation, same arity, and no position with two distinct constants.
    /// (This is the conservative dependence test used for read checks and
    /// partitioning — cheaper than a full mgu and equivalent for flat
    /// terms.)
    pub fn may_overlap(&self, other: &Atom) -> bool {
        self.relation == other.relation
            && self.arity() == other.arity()
            && self
                .terms
                .iter()
                .zip(&other.terms)
                .all(|(a, b)| match (a, b) {
                    (Term::Const(x), Term::Const(y)) => x == y,
                    _ => true,
                })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarGen;
    use qdb_storage::Value;

    fn setup() -> (VarGen, Atom) {
        let mut g = VarGen::new();
        let f = g.fresh("f");
        let s = g.fresh("s");
        let atom = Atom::new("Available", vec![Term::Var(f), Term::Var(s)]);
        (g, atom)
    }

    #[test]
    fn display_matches_datalog() {
        let (_, a) = setup();
        assert_eq!(a.to_string(), "Available(f, s)");
        let g = Atom::new("Bookings", vec![Term::val("Mickey"), Term::val(1)]);
        assert_eq!(g.to_string(), "Bookings('Mickey', 1)");
    }

    #[test]
    fn groundness_and_vars() {
        let (_, a) = setup();
        assert!(!a.is_ground());
        assert_eq!(a.vars().count(), 2);
        let g = Atom::new("B", vec![Term::val(1)]);
        assert!(g.is_ground());
        assert_eq!(g.vars().count(), 0);
    }

    #[test]
    fn ground_requires_total_valuation() {
        let (_, a) = setup();
        let mut val = Valuation::new();
        assert!(a.ground(&val).is_err());
        let vars: Vec<Var> = a.vars().cloned().collect();
        val.bind(vars[0].clone(), Value::from(1));
        val.bind(vars[1].clone(), Value::from("1A"));
        let t = a.ground(&val).unwrap();
        assert_eq!(t.to_string(), "(1, '1A')");
    }

    #[test]
    fn to_pattern_respects_bindings() {
        let (_, a) = setup();
        let mut val = Valuation::new();
        let vars: Vec<Var> = a.vars().cloned().collect();
        val.bind(vars[0].clone(), Value::from(7));
        let p = a.to_pattern(&val);
        assert_eq!(p.terms[0], PatTerm::Const(Value::from(7)));
        assert_eq!(p.terms[1], PatTerm::Var(vars[1].id()));
    }

    #[test]
    fn may_overlap_is_conservative() {
        let mut g = VarGen::new();
        let x = Term::Var(g.fresh("x"));
        let a1 = Atom::new("A", vec![Term::val(1), x.clone()]);
        let a2 = Atom::new("A", vec![Term::val(1), Term::val("1A")]);
        let a3 = Atom::new("A", vec![Term::val(2), x.clone()]);
        let b = Atom::new("B", vec![Term::val(1), x.clone()]);
        assert!(a1.may_overlap(&a2));
        assert!(!a1.may_overlap(&a3)); // constants 1 vs 2 clash
        assert!(!a1.may_overlap(&b)); // different relation
        let short = Atom::new("A", vec![Term::val(1)]);
        assert!(!a1.may_overlap(&short)); // different arity
    }
}
