//! SQL-style surface syntax for resource transactions (Figure 1).
//!
//! The paper introduces resource transactions as a SQL extension with
//! three new keywords — `OPTIONAL`, `CHOOSE 1` and `FOLLOWED BY` — but its
//! prototype "does not accept and parse resource transactions in their SQL
//! format, only in the intermediate Datalog-like representation" (§4).
//! This module implements the SQL front end as an extension, over a
//! positional-atom dialect that matches the storage layer:
//!
//! ```text
//! SELECT @f, @s
//! FROM Available(@f, @s),
//!      OPTIONAL Bookings('Goofy', @f, @s2),
//!      OPTIONAL Adjacent(@s, @s2)
//! WHERE @f = 123
//! CHOOSE 1
//! FOLLOWED BY (
//!     DELETE (@f, @s) FROM Available;
//!     INSERT ('Mickey', @f, @s) INTO Bookings;
//! )
//! ```
//!
//! * `FROM` items are relational atoms; `OPTIONAL` marks soft preferences
//!   (the paper's `OPTIONAL` join items / `WHERE` conjuncts).
//! * `WHERE` supports equality conjuncts `@v = literal` and `@v = @w`,
//!   folded into the atoms by substitution before the transaction is
//!   built (so the Datalog core stays pure).
//! * `CHOOSE 1` is mandatory — resource transactions request exactly one
//!   grounding (§2).
//! * `FOLLOWED BY` contains only blind writes, as required by §2: "no
//!   reads are permitted within the FOLLOWED BY block".
//!
//! Keywords are case-insensitive; variables are `@name`; literals are
//! integers, `'strings'` and `true`/`false`.

use std::collections::HashMap;

use qdb_storage::Value;

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::{Term, Var, VarGen};
use crate::transaction::{BodyAtom, ResourceTransaction, UpdateAtom};
use crate::{LogicError, Result};

/// Parse a SQL-style resource transaction into the Datalog-like core form.
pub fn parse_sql_transaction(input: &str) -> Result<ResourceTransaction> {
    SqlParser::new(input)?.transaction()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Kw(&'static str), // canonical uppercase keyword
    Ident(String),
    Var(String),
    Int(i64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Semi,
    Eq,
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "OPTIONAL", "WHERE", "AND", "CHOOSE", "FOLLOWED", "BY", "DELETE", "INSERT",
    "INTO", "TRUE", "FALSE",
];

fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '@' => {
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == name_start {
                    return Err(LogicError::Parse {
                        at: start,
                        reason: "expected variable name after '@'".into(),
                    });
                }
                toks.push((Tok::Var(input[name_start..i].to_string()), start));
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LogicError::Parse {
                            at: start,
                            reason: "unterminated string literal".into(),
                        });
                    }
                    let d = bytes[i] as char;
                    i += 1;
                    if d == '\'' {
                        break;
                    }
                    s.push(d);
                }
                toks.push((Tok::Str(s), start));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|e| LogicError::Parse {
                    at: start,
                    reason: format!("bad integer: {e}"),
                })?;
                toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == upper) {
                    toks.push((Tok::Kw(kw), start));
                } else {
                    toks.push((Tok::Ident(word.to_string()), start));
                }
            }
            other => {
                return Err(LogicError::Parse {
                    at: i,
                    reason: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    Ok(toks)
}

struct SqlParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vargen: VarGen,
    vars: HashMap<String, Var>,
}

impl SqlParser {
    fn new(input: &str) -> Result<Self> {
        Ok(SqlParser {
            toks: lex(input)?,
            pos: 0,
            vargen: VarGen::new(),
            vars: HashMap::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, reason: impl Into<String>) -> LogicError {
        LogicError::Parse {
            at: self.at(),
            reason: reason.into(),
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        match self.bump() {
            Tok::Kw(k) if k == kw => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        let got = self.bump();
        if got == t {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {got:?}")))
        }
    }

    fn var(&mut self, name: String) -> Var {
        match self.vars.get(&name) {
            Some(v) => v.clone(),
            None => {
                let v = self.vargen.fresh(&name);
                self.vars.insert(name, v.clone());
                v
            }
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Tok::Var(name) => Ok(Term::Var(self.var(name))),
            Tok::Int(i) => Ok(Term::val(i)),
            Tok::Str(s) => Ok(Term::Const(Value::from(s))),
            Tok::Kw("TRUE") => Ok(Term::Const(Value::Bool(true))),
            Tok::Kw("FALSE") => Ok(Term::Const(Value::Bool(false))),
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>> {
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                terms.push(self.term()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(terms)
    }

    fn relation_name(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected relation name, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let rel = self.relation_name()?;
        let terms = self.term_list()?;
        Ok(Atom::new(rel, terms))
    }

    fn transaction(&mut self) -> Result<ResourceTransaction> {
        // SELECT <term list> — the projection is informational (the
        // grounding binds every variable anyway); parsed and discarded.
        self.expect_kw("SELECT")?;
        loop {
            let _ = self.term()?;
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }

        // FROM item (, item)* where item := [OPTIONAL] Atom
        self.expect_kw("FROM")?;
        let mut body: Vec<BodyAtom> = Vec::new();
        loop {
            let optional = if *self.peek() == Tok::Kw("OPTIONAL") {
                self.bump();
                true
            } else {
                false
            };
            body.push(BodyAtom {
                atom: self.atom()?,
                optional,
            });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }

        // WHERE eq (AND eq)* — optional clause.
        let mut subst = Substitution::new();
        if *self.peek() == Tok::Kw("WHERE") {
            self.bump();
            loop {
                let lhs = self.term()?;
                self.expect(Tok::Eq, "'='")?;
                let rhs = self.term()?;
                let at = self.at();
                let lv = subst.resolve(&lhs);
                let rv = subst.resolve(&rhs);
                let bound = match (&lv, &rv) {
                    (Term::Var(v), t) | (t, Term::Var(v)) => subst.bind(v, t),
                    (Term::Const(a), Term::Const(b)) => a == b,
                };
                if !bound {
                    return Err(LogicError::Parse {
                        at,
                        reason: "contradictory WHERE equalities".into(),
                    });
                }
                if *self.peek() == Tok::Kw("AND") {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        // CHOOSE 1
        self.expect_kw("CHOOSE")?;
        match self.bump() {
            Tok::Int(1) => {}
            other => {
                return Err(self.error(format!(
                    "resource transactions require CHOOSE 1, found {other:?}"
                )))
            }
        }

        // FOLLOWED BY ( stmt; stmt; ... )
        self.expect_kw("FOLLOWED")?;
        self.expect_kw("BY")?;
        self.expect(Tok::LParen, "'('")?;
        let mut updates: Vec<UpdateAtom> = Vec::new();
        loop {
            match self.peek() {
                Tok::RParen => {
                    self.bump();
                    break;
                }
                Tok::Kw("DELETE") => {
                    self.bump();
                    let terms = self.term_list()?;
                    self.expect_kw("FROM")?;
                    let rel = self.relation_name()?;
                    updates.push(UpdateAtom::delete(Atom::new(rel, terms)));
                }
                Tok::Kw("INSERT") => {
                    self.bump();
                    let terms = self.term_list()?;
                    self.expect_kw("INTO")?;
                    let rel = self.relation_name()?;
                    updates.push(UpdateAtom::insert(Atom::new(rel, terms)));
                }
                other => {
                    return Err(self.error(format!(
                        "expected DELETE, INSERT or ')' in FOLLOWED BY block \
                         (reads are not permitted, §2), found {other:?}"
                    )))
                }
            }
            if *self.peek() == Tok::Semi {
                self.bump();
            }
        }
        match self.bump() {
            Tok::Eof => {}
            other => return Err(self.error(format!("trailing input: {other:?}"))),
        }
        if updates.is_empty() {
            return Err(LogicError::Parse {
                at: self.at(),
                reason: "FOLLOWED BY block must contain at least one write".into(),
            });
        }

        // Fold WHERE equalities into the atoms and build the core form.
        let body = body
            .into_iter()
            .map(|b| BodyAtom {
                atom: b.atom.apply(&subst),
                optional: b.optional,
            })
            .collect();
        let updates = updates
            .into_iter()
            .map(|u| UpdateAtom {
                kind: u.kind,
                atom: u.atom.apply(&subst),
            })
            .collect();
        ResourceTransaction::new(updates, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transaction;

    const MICKEY_SQL: &str = "\
        SELECT @f, @s \
        FROM Available(@f, @s), \
             OPTIONAL Bookings('Goofy', @f, @s2), \
             OPTIONAL Adjacent(@s, @s2) \
        CHOOSE 1 \
        FOLLOWED BY ( \
            DELETE (@f, @s) FROM Available; \
            INSERT ('Mickey', @f, @s) INTO Bookings; \
        )";

    #[test]
    fn figure1_style_transaction_parses() {
        let t = parse_sql_transaction(MICKEY_SQL).unwrap();
        assert_eq!(t.updates.len(), 2);
        assert_eq!(t.body.len(), 3);
        assert_eq!(t.optional_body().count(), 2);
        // The SQL form and the Datalog form produce the same transaction.
        let datalog = parse_transaction(
            "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
             Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap();
        assert_eq!(t.to_string(), datalog.to_string());
    }

    #[test]
    fn where_equalities_fold_into_atoms() {
        let t = parse_sql_transaction(
            "SELECT @s FROM Available(@f, @s) WHERE @f = 123 \
             CHOOSE 1 FOLLOWED BY (DELETE (@f, @s) FROM Available)",
        )
        .unwrap();
        assert_eq!(
            t.to_string(),
            "-Available(123, s) :-1 Available(123, s)"
        );
        // Var-var equality aliases the two.
        let t = parse_sql_transaction(
            "SELECT @a FROM R(@a, @b) WHERE @a = @b \
             CHOOSE 1 FOLLOWED BY (INSERT (@a) INTO S)",
        )
        .unwrap();
        let atom = &t.body[0].atom;
        assert_eq!(atom.terms[0], atom.terms[1]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let t = parse_sql_transaction(
            "select @s from Available(1, @s) choose 1 \
             followed by (delete (1, @s) from Available)",
        )
        .unwrap();
        assert_eq!(t.updates.len(), 1);
    }

    #[test]
    fn choose_must_be_one() {
        let err = parse_sql_transaction(
            "SELECT @s FROM A(@s) CHOOSE 2 FOLLOWED BY (DELETE (@s) FROM A)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("CHOOSE 1"));
    }

    #[test]
    fn reads_in_followed_by_are_rejected() {
        let err = parse_sql_transaction(
            "SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY (SELECT @s)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not permitted"));
    }

    #[test]
    fn empty_followed_by_rejected() {
        let err = parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY ()")
            .unwrap_err();
        assert!(err.to_string().contains("at least one write"));
    }

    #[test]
    fn contradictory_where_rejected() {
        let err = parse_sql_transaction(
            "SELECT @s FROM A(@s) WHERE @s = 1 AND @s = 2 \
             CHOOSE 1 FOLLOWED BY (DELETE (@s) FROM A)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("contradictory"));
    }

    #[test]
    fn range_restriction_still_enforced() {
        // @z appears only in the update: invalid per §2.
        let err = parse_sql_transaction(
            "SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY (INSERT (@z) INTO B)",
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::RangeRestriction { .. }));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_sql_transaction("SELECT").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_sql_transaction("SELECT @s FROM A(@s").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
    }

    #[test]
    fn sql_transaction_runs_through_a_live_engine() {
        // End-to-end: the SQL front end drives the quantum engine exactly
        // like the Datalog form does. (Uses only logic-level checks here;
        // full engine round-trip lives in the facade integration tests.)
        let t = parse_sql_transaction(MICKEY_SQL).unwrap();
        t.validate().unwrap();
        let mut gen = VarGen::starting_at(100);
        let fresh = t.freshen(&mut gen);
        assert_eq!(fresh.to_string(), t.to_string());
    }
}
