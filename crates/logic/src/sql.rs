//! SQL-style surface syntax: the full statement grammar of the unified
//! `execute()` API.
//!
//! The paper introduces resource transactions as a SQL extension with
//! three new keywords — `OPTIONAL`, `CHOOSE 1` and `FOLLOWED BY` — but its
//! prototype "does not accept and parse resource transactions in their SQL
//! format, only in the intermediate Datalog-like representation" (§4).
//! This module implements the SQL front end as an extension over a
//! positional-atom dialect that matches the storage layer, and grows it
//! into a complete statement grammar (see [`crate::stmt`] for the
//! statement classes):
//!
//! ```text
//! SELECT @f, @s
//! FROM Available(@f, @s),
//!      OPTIONAL Bookings('Goofy', @f, @s2),
//!      OPTIONAL Adjacent(@s, @s2)
//! WHERE @f = 123
//! CHOOSE 1
//! FOLLOWED BY (
//!     DELETE (@f, @s) FROM Available;
//!     INSERT ('Mickey', @f, @s) INTO Bookings;
//! )
//! ```
//!
//! * `FROM` items are relational atoms; `OPTIONAL` marks soft preferences
//!   (the paper's `OPTIONAL` join items / `WHERE` conjuncts).
//! * `WHERE` supports equality conjuncts `@v = literal` and `@v = @w`,
//!   folded into the atoms by substitution before the transaction is
//!   built (so the Datalog core stays pure).
//! * `CHOOSE 1` makes a `SELECT` a resource transaction — one requesting
//!   exactly one grounding (§2). Without it, `SELECT` is a read, with
//!   `PEEK` / `POSSIBLE` modifiers selecting the §3.2.2 semantics and an
//!   optional `LIMIT`.
//! * `FOLLOWED BY` contains only blind writes, as required by §2: "no
//!   reads are permitted within the FOLLOWED BY block".
//! * `INSERT INTO R VALUES (…)` / `DELETE FROM R VALUES (…)` are blind
//!   non-resource writes; `CREATE TABLE` / `CREATE INDEX` are DDL;
//!   `GROUND <id>` / `GROUND ALL` / `CHECKPOINT` / `SHOW METRICS` /
//!   `SHOW PENDING` / `SHOW PROFILE` / `SHOW EVENTS [LIMIT n]` are
//!   control statements.
//! * `?` is a positional parameter placeholder (prepared statements).
//!
//! Keywords are case-insensitive; variables are `@name`; literals are
//! integers, `'strings'` and `true`/`false`. `CREATE`, `TABLE`, `INDEX`,
//! `ON`, `VALUES` and `LIMIT` are reserved and cannot name relations or
//! columns; `GROUND`, `SHOW`, `CHECKPOINT`, `PEEK`, `POSSIBLE`, `ALL`,
//! `METRICS`, `PENDING`, `PROFILE` and `EVENTS` are contextual (only
//! special where the grammar expects them).

use std::collections::{BTreeSet, HashMap};

use qdb_storage::{Schema, Value, ValueType};

use crate::atom::Atom;
use crate::stmt::{
    validate_template, ColumnRef, ParsedStatement, ReadMode, SelectStmt, Statement, TxnStmt,
};
use crate::substitution::Substitution;
use crate::term::{Term, Var, VarGen};
use crate::transaction::{BodyAtom, ResourceTransaction, UpdateAtom};
use crate::{LogicError, Result};

/// Parse one statement of the unified dialect (with `?` placeholders).
pub fn parse_statement(input: &str) -> Result<ParsedStatement> {
    SqlParser::new(input)?.statement()
}

/// Parse a SQL-style resource transaction into the Datalog-like core form.
///
/// Compatibility entry point over [`parse_statement`]: accepts exactly the
/// `SELECT … CHOOSE 1 FOLLOWED BY (…)` class, without placeholders.
pub fn parse_sql_transaction(input: &str) -> Result<ResourceTransaction> {
    let parsed = parse_statement(input)?;
    match parsed.statement()? {
        Statement::Transaction(t) => t.to_transaction(),
        other => Err(LogicError::Parse {
            at: 0,
            reason: format!(
                "expected a resource transaction, found a {} statement",
                other.kind()
            ),
        }),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Kw(&'static str), // canonical uppercase keyword
    Ident(String),
    Var(String),
    Int(i64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Semi,
    Eq,
    Star,
    Param,
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "OPTIONAL", "WHERE", "AND", "CHOOSE", "FOLLOWED", "BY", "DELETE", "INSERT",
    "INTO", "TRUE", "FALSE", "CREATE", "TABLE", "INDEX", "ON", "VALUES", "LIMIT",
];

fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '?' => {
                toks.push((Tok::Param, i));
                i += 1;
            }
            '@' => {
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == name_start {
                    return Err(LogicError::Parse {
                        at: start,
                        reason: "expected variable name after '@'".into(),
                    });
                }
                toks.push((Tok::Var(input[name_start..i].to_string()), start));
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LogicError::Parse {
                            at: start,
                            reason: "unterminated string literal".into(),
                        });
                    }
                    let d = bytes[i] as char;
                    i += 1;
                    if d == '\'' {
                        break;
                    }
                    s.push(d);
                }
                toks.push((Tok::Str(s), start));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|e| LogicError::Parse {
                    at: start,
                    reason: format!("bad integer: {e}"),
                })?;
                toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == upper) {
                    toks.push((Tok::Kw(kw), start));
                } else {
                    toks.push((Tok::Ident(word.to_string()), start));
                }
            }
            other => {
                return Err(LogicError::Parse {
                    at: i,
                    reason: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    Ok(toks)
}

struct SqlParser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vargen: VarGen,
    vars: HashMap<String, Var>,
    /// Placeholder variables in positional order.
    params: Vec<Var>,
    /// Ids of placeholder variables, for fast "is a param" checks.
    param_ids: BTreeSet<u32>,
}

impl SqlParser {
    fn new(input: &str) -> Result<Self> {
        Ok(SqlParser {
            toks: lex(input)?,
            pos: 0,
            vargen: VarGen::new(),
            vars: HashMap::new(),
            params: Vec::new(),
            param_ids: BTreeSet::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, reason: impl Into<String>) -> LogicError {
        LogicError::Parse {
            at: self.at(),
            reason: reason.into(),
        }
    }

    fn error_at(&self, at: usize, reason: impl Into<String>) -> LogicError {
        LogicError::Parse {
            at,
            reason: reason.into(),
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        match self.bump() {
            Tok::Kw(k) if k == kw => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        let got = self.bump();
        if got == t {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {got:?}")))
        }
    }

    /// Is the current token an identifier equal (case-insensitively) to
    /// the given contextual keyword?
    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w.eq_ignore_ascii_case(word))
    }

    fn var(&mut self, name: String) -> Var {
        match self.vars.get(&name) {
            Some(v) => v.clone(),
            None => {
                let v = self.vargen.fresh(&name);
                self.vars.insert(name, v.clone());
                v
            }
        }
    }

    /// Allocate the next positional parameter placeholder.
    fn param(&mut self) -> Var {
        let v = self.vargen.fresh(format!("?{}", self.params.len() + 1));
        self.params.push(v.clone());
        self.param_ids.insert(v.id());
        v
    }

    fn is_param(&self, t: &Term) -> bool {
        matches!(t, Term::Var(v) if self.param_ids.contains(&v.id()))
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Tok::Var(name) => Ok(Term::Var(self.var(name))),
            Tok::Param => Ok(Term::Var(self.param())),
            Tok::Int(i) => Ok(Term::val(i)),
            // Parsed string constants go through the interning pool: the
            // same seat label / user name re-parsed across statements
            // resolves to one shared `Arc`.
            Tok::Str(s) => Ok(Term::Const(Value::interned(&s))),
            Tok::Kw("TRUE") => Ok(Term::Const(Value::Bool(true))),
            Tok::Kw("FALSE") => Ok(Term::Const(Value::Bool(false))),
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>> {
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                terms.push(self.term()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(terms)
    }

    fn relation_name(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(name) => Ok(name),
            Tok::Kw(kw) => {
                Err(self.error(format!("'{kw}' is reserved and cannot name a relation")))
            }
            other => Err(self.error(format!("expected relation name, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let rel = self.relation_name()?;
        let terms = self.term_list()?;
        Ok(Atom::new(rel, terms))
    }

    // -- Statement dispatch --------------------------------------------------

    fn statement(&mut self) -> Result<ParsedStatement> {
        let stmt = match self.peek() {
            Tok::Kw("SELECT") => self.select_like()?,
            Tok::Kw("INSERT") => self.insert_stmt()?,
            Tok::Kw("DELETE") => self.delete_stmt()?,
            Tok::Kw("CREATE") => self.create_stmt()?,
            Tok::Ident(_) if self.at_ident("GROUND") => self.ground_stmt()?,
            Tok::Ident(_) if self.at_ident("SHOW") => self.show_stmt()?,
            Tok::Ident(_) if self.at_ident("CHECKPOINT") => {
                self.bump();
                Statement::Checkpoint
            }
            Tok::Ident(_) if self.at_ident("PROMOTE") => {
                self.bump();
                Statement::Promote
            }
            other => {
                return Err(self.error(format!(
                    "expected a statement (SELECT, INSERT, DELETE, CREATE, GROUND, SHOW, \
                     CHECKPOINT or PROMOTE), found {other:?}"
                )))
            }
        };
        if *self.peek() == Tok::Semi {
            self.bump();
        }
        match self.bump() {
            Tok::Eof => {}
            other => return Err(self.error(format!("trailing input: {other:?}"))),
        }
        Ok(ParsedStatement {
            stmt,
            params: std::mem::take(&mut self.params),
        })
    }

    // -- SELECT: read or resource transaction --------------------------------

    fn select_like(&mut self) -> Result<Statement> {
        self.expect_kw("SELECT")?;
        let mode = if self.at_ident("PEEK") {
            self.bump();
            ReadMode::Peek
        } else if self.at_ident("POSSIBLE") {
            self.bump();
            ReadMode::Possible
        } else {
            ReadMode::Collapse
        };

        // Projection: `*` or a term list. For a resource transaction the
        // projection is informational (the grounding binds every variable
        // anyway); for a read it selects the output variables.
        let mut proj_at = self.at();
        let projection: Option<Vec<Term>> = if *self.peek() == Tok::Star {
            self.bump();
            None
        } else {
            proj_at = self.at();
            let mut terms = vec![self.term()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                terms.push(self.term()?);
            }
            if terms.iter().any(|t| self.is_param(t)) {
                return Err(self.error_at(proj_at, "parameters cannot be projected"));
            }
            Some(terms)
        };

        // FROM item (, item)* where item := [OPTIONAL] Atom
        self.expect_kw("FROM")?;
        let mut body: Vec<BodyAtom> = Vec::new();
        let mut first_optional_at: Option<usize> = None;
        loop {
            let optional = if *self.peek() == Tok::Kw("OPTIONAL") {
                first_optional_at.get_or_insert(self.at());
                self.bump();
                true
            } else {
                false
            };
            body.push(BodyAtom {
                atom: self.atom()?,
                optional,
            });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }

        let subst = self.where_clause()?;

        if *self.peek() == Tok::Kw("CHOOSE") {
            if mode != ReadMode::Collapse {
                return Err(self.error(
                    "PEEK/POSSIBLE are read modifiers; a resource transaction (CHOOSE 1) \
                     always defers its grounding",
                ));
            }
            return self.transaction_tail(body, &subst);
        }

        // A plain read.
        if let Some(at) = first_optional_at {
            return Err(self.error_at(
                at,
                "OPTIONAL atoms are only valid in resource transactions (CHOOSE 1 …)",
            ));
        }
        let limit = if *self.peek() == Tok::Kw("LIMIT") {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(self.error(format!(
                        "LIMIT takes a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        let atoms = body.into_iter().map(|b| b.atom.apply(&subst)).collect();
        let projection = match projection {
            None => None,
            Some(terms) => {
                let mut vars: Vec<Var> = Vec::new();
                for t in &terms {
                    let resolved = subst.resolve(t);
                    // A projected variable aliased to a parameter through
                    // WHERE would vanish from the result rows once bound:
                    // reject it like a directly-projected `?`.
                    if self.is_param(&resolved) {
                        return Err(self.error_at(
                            proj_at,
                            "parameters cannot be projected (a WHERE equality binds \
                             this variable to '?')",
                        ));
                    }
                    if let Term::Var(v) = resolved {
                        if !vars.contains(&v) {
                            vars.push(v);
                        }
                    }
                }
                Some(vars)
            }
        };
        Ok(Statement::Select(SelectStmt {
            atoms,
            projection,
            mode,
            limit,
        }))
    }

    /// `WHERE eq (AND eq)*` — optional clause, folded into a substitution.
    fn where_clause(&mut self) -> Result<Substitution> {
        let mut subst = Substitution::new();
        if *self.peek() != Tok::Kw("WHERE") {
            return Ok(subst);
        }
        self.bump();
        loop {
            let lhs = self.term()?;
            self.expect(Tok::Eq, "'='")?;
            let rhs = self.term()?;
            let at = self.at();
            let lv = subst.resolve(&lhs);
            let rv = subst.resolve(&rhs);
            let bound = match (self.is_param(&lv), self.is_param(&rv)) {
                (true, true) => {
                    return Err(self.error_at(at, "parameters cannot be equated with each other"))
                }
                // Bind the non-param side to the parameter so the
                // placeholder survives into the statement template.
                (true, false) | (false, true) => {
                    let (param, other) = if self.is_param(&lv) {
                        (lv, rv)
                    } else {
                        (rv, lv)
                    };
                    match other {
                        Term::Var(ref v) => subst.bind(v, &param),
                        Term::Const(_) => {
                            return Err(self.error_at(
                                at,
                                "a parameter must be compared to a variable, not a literal",
                            ))
                        }
                    }
                }
                (false, false) => match (&lv, &rv) {
                    (Term::Var(v), t) | (t, Term::Var(v)) => subst.bind(v, t),
                    (Term::Const(a), Term::Const(b)) => a == b,
                },
            };
            if !bound {
                return Err(self.error_at(at, "contradictory WHERE equalities"));
            }
            if *self.peek() == Tok::Kw("AND") {
                self.bump();
            } else {
                break;
            }
        }
        Ok(subst)
    }

    /// `CHOOSE 1 FOLLOWED BY ( write; … )` after a SELECT prefix.
    fn transaction_tail(&mut self, body: Vec<BodyAtom>, subst: &Substitution) -> Result<Statement> {
        self.expect_kw("CHOOSE")?;
        match self.bump() {
            Tok::Int(1) => {}
            other => {
                return Err(self.error(format!(
                    "resource transactions require CHOOSE 1, found {other:?}"
                )))
            }
        }

        self.expect_kw("FOLLOWED")?;
        self.expect_kw("BY")?;
        self.expect(Tok::LParen, "'('")?;
        let mut updates: Vec<UpdateAtom> = Vec::new();
        loop {
            match self.peek() {
                Tok::RParen => {
                    self.bump();
                    break;
                }
                Tok::Kw("DELETE") => {
                    self.bump();
                    let terms = self.term_list()?;
                    self.expect_kw("FROM")?;
                    let rel = self.relation_name()?;
                    updates.push(UpdateAtom::delete(Atom::new(rel, terms)));
                }
                Tok::Kw("INSERT") => {
                    self.bump();
                    let terms = self.term_list()?;
                    self.expect_kw("INTO")?;
                    let rel = self.relation_name()?;
                    updates.push(UpdateAtom::insert(Atom::new(rel, terms)));
                }
                other => {
                    return Err(self.error(format!(
                        "expected DELETE, INSERT or ')' in FOLLOWED BY block \
                         (reads are not permitted, §2), found {other:?}"
                    )))
                }
            }
            if *self.peek() == Tok::Semi {
                self.bump();
            }
        }
        if updates.is_empty() {
            return Err(LogicError::Parse {
                at: self.at(),
                reason: "FOLLOWED BY block must contain at least one write".into(),
            });
        }

        // Fold WHERE equalities into the atoms and build the template.
        let txn = TxnStmt {
            updates: updates
                .into_iter()
                .map(|u| UpdateAtom {
                    kind: u.kind,
                    atom: u.atom.apply(subst),
                })
                .collect(),
            body: body
                .into_iter()
                .map(|b| BodyAtom {
                    atom: b.atom.apply(subst),
                    optional: b.optional,
                })
                .collect(),
        };
        validate_template(&txn, &self.params)?;
        Ok(Statement::Transaction(txn))
    }

    // -- Blind writes --------------------------------------------------------

    fn insert_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        if *self.peek() == Tok::LParen {
            return Err(self.error(
                "top-level inserts are INSERT INTO <relation> VALUES (…); \
                 INSERT (…) INTO <relation> is only valid inside FOLLOWED BY",
            ));
        }
        self.expect_kw("INTO")?;
        let relation = self.relation_name()?;
        self.expect_kw("VALUES")?;
        let rows = self.value_rows()?;
        Ok(Statement::Insert { relation, rows })
    }

    fn delete_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        if *self.peek() == Tok::LParen {
            return Err(self.error(
                "top-level deletes are DELETE FROM <relation> VALUES (…); \
                 DELETE (…) FROM <relation> is only valid inside FOLLOWED BY",
            ));
        }
        self.expect_kw("FROM")?;
        let relation = self.relation_name()?;
        self.expect_kw("VALUES")?;
        let rows = self.value_rows()?;
        Ok(Statement::Delete { relation, rows })
    }

    /// `( term, … ) (, ( term, … ))*` where terms are literals or `?`.
    fn value_rows(&mut self) -> Result<Vec<Vec<Term>>> {
        let mut rows = Vec::new();
        loop {
            let row_at = self.at();
            let row = self.term_list()?;
            if let Some(bad) = row.iter().find(|t| t.is_var() && !self.is_param(t)) {
                return Err(self.error_at(
                    row_at,
                    format!("VALUES rows take literals or '?' parameters, found variable '{bad}'"),
                ));
            }
            rows.push(row);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(rows)
    }

    // -- DDL -----------------------------------------------------------------

    fn create_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        match self.bump() {
            Tok::Kw("TABLE") => {
                let relation = self.relation_name()?;
                self.expect(Tok::LParen, "'('")?;
                let mut columns: Vec<(String, ValueType)> = Vec::new();
                loop {
                    let name = match self.bump() {
                        Tok::Ident(n) => n,
                        Tok::Kw(kw) => {
                            return Err(
                                self.error(format!("'{kw}' is reserved and cannot name a column"))
                            )
                        }
                        other => {
                            return Err(self.error(format!("expected column name, found {other:?}")))
                        }
                    };
                    let ty = self.column_type()?;
                    columns.push((name, ty));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen, "')'")?;
                let schema = Schema::new(
                    relation,
                    columns.iter().map(|(n, t)| (n.as_str(), *t)).collect(),
                );
                Ok(Statement::CreateTable(schema))
            }
            Tok::Kw("INDEX") => {
                self.expect_kw("ON")?;
                let relation = self.relation_name()?;
                self.expect(Tok::LParen, "'('")?;
                let column = match self.bump() {
                    Tok::Ident(name) => ColumnRef::Name(name),
                    Tok::Int(i) if i >= 0 => ColumnRef::Position(i as usize),
                    other => {
                        return Err(self.error(format!(
                            "expected a column name or position, found {other:?}"
                        )))
                    }
                };
                self.expect(Tok::RParen, "')'")?;
                Ok(Statement::CreateIndex { relation, column })
            }
            other => Err(self.error(format!("expected TABLE or INDEX, found {other:?}"))),
        }
    }

    fn column_type(&mut self) -> Result<ValueType> {
        match self.bump() {
            Tok::Ident(w) => match w.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => Ok(ValueType::Int),
                "TEXT" | "STR" | "STRING" | "VARCHAR" => Ok(ValueType::Str),
                "BOOL" | "BOOLEAN" => Ok(ValueType::Bool),
                other => Err(self.error(format!(
                    "unknown column type '{other}' (supported: INT, TEXT, BOOL)"
                ))),
            },
            other => Err(self.error(format!("expected a column type, found {other:?}"))),
        }
    }

    // -- Control -------------------------------------------------------------

    fn ground_stmt(&mut self) -> Result<Statement> {
        self.bump(); // GROUND
        if self.at_ident("ALL") {
            self.bump();
            return Ok(Statement::GroundAll);
        }
        match self.bump() {
            Tok::Int(i) if i >= 0 => Ok(Statement::Ground(i as u64)),
            other => Err(self.error(format!(
                "GROUND takes a transaction id or ALL, found {other:?}"
            ))),
        }
    }

    fn show_stmt(&mut self) -> Result<Statement> {
        self.bump(); // SHOW
        if self.at_ident("METRICS") {
            self.bump();
            Ok(Statement::ShowMetrics)
        } else if self.at_ident("PENDING") {
            self.bump();
            Ok(Statement::ShowPending)
        } else if self.at_ident("PROFILE") {
            self.bump();
            Ok(Statement::ShowProfile)
        } else if self.at_ident("EVENTS") {
            self.bump();
            let limit = if *self.peek() == Tok::Kw("LIMIT") {
                self.bump();
                match self.bump() {
                    Tok::Int(n) if n >= 0 => Some(n as usize),
                    other => {
                        return Err(self.error(format!(
                            "LIMIT takes a non-negative integer, found {other:?}"
                        )))
                    }
                }
            } else {
                None
            };
            Ok(Statement::ShowEvents { limit })
        } else if self.at_ident("REPLICATION") {
            self.bump();
            Ok(Statement::ShowReplication)
        } else {
            Err(self.error(format!(
                "SHOW supports METRICS, PENDING, PROFILE, EVENTS and REPLICATION, found {:?}",
                self.peek()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transaction;

    const MICKEY_SQL: &str = "\
        SELECT @f, @s \
        FROM Available(@f, @s), \
             OPTIONAL Bookings('Goofy', @f, @s2), \
             OPTIONAL Adjacent(@s, @s2) \
        CHOOSE 1 \
        FOLLOWED BY ( \
            DELETE (@f, @s) FROM Available; \
            INSERT ('Mickey', @f, @s) INTO Bookings; \
        )";

    #[test]
    fn figure1_style_transaction_parses() {
        let t = parse_sql_transaction(MICKEY_SQL).unwrap();
        assert_eq!(t.updates.len(), 2);
        assert_eq!(t.body.len(), 3);
        assert_eq!(t.optional_body().count(), 2);
        // The SQL form and the Datalog form produce the same transaction.
        let datalog = parse_transaction(
            "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
             Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap();
        assert_eq!(t.to_string(), datalog.to_string());
    }

    #[test]
    fn where_equalities_fold_into_atoms() {
        let t = parse_sql_transaction(
            "SELECT @s FROM Available(@f, @s) WHERE @f = 123 \
             CHOOSE 1 FOLLOWED BY (DELETE (@f, @s) FROM Available)",
        )
        .unwrap();
        assert_eq!(t.to_string(), "-Available(123, s) :-1 Available(123, s)");
        // Var-var equality aliases the two.
        let t = parse_sql_transaction(
            "SELECT @a FROM R(@a, @b) WHERE @a = @b \
             CHOOSE 1 FOLLOWED BY (INSERT (@a) INTO S)",
        )
        .unwrap();
        let atom = &t.body[0].atom;
        assert_eq!(atom.terms[0], atom.terms[1]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let t = parse_sql_transaction(
            "select @s from Available(1, @s) choose 1 \
             followed by (delete (1, @s) from Available)",
        )
        .unwrap();
        assert_eq!(t.updates.len(), 1);
    }

    #[test]
    fn choose_must_be_one() {
        let err =
            parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 2 FOLLOWED BY (DELETE (@s) FROM A)")
                .unwrap_err();
        assert!(err.to_string().contains("CHOOSE 1"));
    }

    #[test]
    fn reads_in_followed_by_are_rejected() {
        let err = parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY (SELECT @s)")
            .unwrap_err();
        assert!(err.to_string().contains("not permitted"));
    }

    #[test]
    fn empty_followed_by_rejected() {
        let err =
            parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY ()").unwrap_err();
        assert!(err.to_string().contains("at least one write"));
    }

    #[test]
    fn contradictory_where_rejected() {
        let err = parse_sql_transaction(
            "SELECT @s FROM A(@s) WHERE @s = 1 AND @s = 2 \
             CHOOSE 1 FOLLOWED BY (DELETE (@s) FROM A)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("contradictory"));
    }

    #[test]
    fn range_restriction_still_enforced() {
        // @z appears only in the update: invalid per §2.
        let err =
            parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1 FOLLOWED BY (INSERT (@z) INTO B)")
                .unwrap_err();
        assert!(matches!(err, LogicError::RangeRestriction { .. }));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_sql_transaction("SELECT").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_sql_transaction("SELECT @s FROM A(@s").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_sql_transaction("SELECT @s FROM A(@s) CHOOSE 1").unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
    }

    #[test]
    fn sql_transaction_runs_through_a_live_engine() {
        // End-to-end: the SQL front end drives the quantum engine exactly
        // like the Datalog form does. (Uses only logic-level checks here;
        // full engine round-trip lives in the facade integration tests.)
        let t = parse_sql_transaction(MICKEY_SQL).unwrap();
        t.validate().unwrap();
        let mut gen = VarGen::starting_at(100);
        let fresh = t.freshen(&mut gen);
        assert_eq!(fresh.to_string(), t.to_string());
    }

    // -- Statement grammar ---------------------------------------------------

    fn stmt(input: &str) -> Statement {
        let parsed = parse_statement(input).unwrap();
        assert_eq!(parsed.param_count(), 0, "unexpected params in {input:?}");
        parsed.statement().unwrap().clone()
    }

    #[test]
    fn create_table_parses_types_and_keeps_column_order() {
        let s = stmt("CREATE TABLE Bookings (name TEXT, flight INT, window BOOL)");
        let Statement::CreateTable(schema) = s else {
            panic!("not a CREATE TABLE: {s:?}");
        };
        assert_eq!(schema.relation(), "Bookings");
        assert_eq!(schema.arity(), 3);
        assert_eq!(
            schema.columns().iter().map(|c| c.ty).collect::<Vec<_>>(),
            vec![ValueType::Str, ValueType::Int, ValueType::Bool]
        );
    }

    #[test]
    fn create_index_by_name_and_position() {
        assert_eq!(
            stmt("CREATE INDEX ON Available (flight)"),
            Statement::CreateIndex {
                relation: "Available".into(),
                column: ColumnRef::Name("flight".into()),
            }
        );
        assert_eq!(
            stmt("CREATE INDEX ON Available (0)"),
            Statement::CreateIndex {
                relation: "Available".into(),
                column: ColumnRef::Position(0),
            }
        );
    }

    #[test]
    fn insert_and_delete_rows() {
        let s = stmt("INSERT INTO Available VALUES (123, '5A'), (123, '5B')");
        let Statement::Insert { relation, rows } = s else {
            panic!("not an INSERT");
        };
        assert_eq!(relation, "Available");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Term::val(123), Term::val("5A")]);
        let s = stmt("DELETE FROM Available VALUES (123, '5A')");
        assert!(matches!(s, Statement::Delete { ref rows, .. } if rows.len() == 1));
    }

    #[test]
    fn select_reads_with_modes_and_limit() {
        let Statement::Select(sel) = stmt("SELECT @f, @s FROM Bookings('Mickey', @f, @s)") else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.mode, ReadMode::Collapse);
        assert_eq!(sel.limit, None);
        assert_eq!(sel.projection.as_ref().unwrap().len(), 2);

        let Statement::Select(sel) = stmt("SELECT PEEK * FROM Bookings(@n, @f, @s) LIMIT 10")
        else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.mode, ReadMode::Peek);
        assert_eq!(sel.limit, Some(10));
        assert!(sel.projection.is_none());

        let Statement::Select(sel) = stmt("SELECT POSSIBLE @s FROM Available(1, @s)") else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.mode, ReadMode::Possible);
    }

    #[test]
    fn select_where_folds_constants_for_reads() {
        let Statement::Select(sel) = stmt("SELECT @s FROM Available(@f, @s) WHERE @f = 123") else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.atoms[0].terms[0], Term::val(123));
        // The bound variable drops out of the projection if folded away.
        let Statement::Select(sel) = stmt("SELECT @f, @s FROM Available(@f, @s) WHERE @f = 123")
        else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.projection.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn control_statements_parse() {
        assert_eq!(stmt("GROUND 7"), Statement::Ground(7));
        assert_eq!(stmt("ground all"), Statement::GroundAll);
        assert_eq!(stmt("CHECKPOINT"), Statement::Checkpoint);
        assert_eq!(stmt("SHOW METRICS"), Statement::ShowMetrics);
        assert_eq!(stmt("SHOW PENDING;"), Statement::ShowPending);
        assert_eq!(stmt("SHOW PROFILE"), Statement::ShowProfile);
        assert_eq!(stmt("show events"), Statement::ShowEvents { limit: None });
        assert_eq!(
            stmt("SHOW EVENTS LIMIT 25;"),
            Statement::ShowEvents { limit: Some(25) }
        );
        assert!(parse_statement("SHOW EVENTS LIMIT -1").is_err());
        assert!(parse_statement("SHOW TABLES").is_err());
        assert_eq!(stmt("SHOW REPLICATION"), Statement::ShowReplication);
        assert_eq!(stmt("show replication;"), Statement::ShowReplication);
        assert_eq!(stmt("PROMOTE"), Statement::Promote);
        assert_eq!(stmt("promote;"), Statement::Promote);
        assert!(parse_statement("PROMOTE 3").is_err());
    }

    #[test]
    fn parsed_string_constants_are_interned() {
        // Re-parsing the same statement text yields constants sharing one
        // Arc — the parser goes through the storage interning pool.
        let extract = |stmt: &Statement| -> Value {
            let Statement::Insert { rows, .. } = stmt else {
                panic!("insert expected");
            };
            let Term::Const(v) = &rows[0][0] else {
                panic!("constant expected");
            };
            v.clone()
        };
        let sql = "INSERT INTO B VALUES ('sql-intern-test-9Z')";
        let a = extract(&stmt(sql));
        let b = extract(&stmt(sql));
        let (Value::Str(a), Value::Str(b)) = (&a, &b) else {
            panic!("string values expected");
        };
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "re-parsed string constants must share one Arc"
        );
    }

    #[test]
    fn params_are_positional_and_bind_in_order() {
        let parsed = parse_statement(
            "SELECT @s FROM Available(?, @s) \
             CHOOSE 1 FOLLOWED BY (DELETE (?, @s) FROM Available; \
                                   INSERT (?, ?, @s) INTO Bookings)",
        )
        .unwrap();
        assert_eq!(parsed.param_count(), 4);
        // Unbound templates refuse to execute.
        assert!(parsed.statement().is_err());
        let bound = parsed
            .bind(&[
                Value::from(123),
                Value::from(123),
                Value::from("Mickey"),
                Value::from(123),
            ])
            .unwrap();
        let Statement::Transaction(t) = bound else {
            panic!("not a transaction");
        };
        let txn = t.to_transaction().unwrap();
        assert_eq!(
            txn.to_string(),
            "-Available(123, s), +Bookings('Mickey', 123, s) :-1 Available(123, s)"
        );
    }

    #[test]
    fn params_in_where_and_values() {
        let parsed =
            parse_statement("SELECT @f, @s FROM Bookings(@n, @f, @s) WHERE @n = ?").unwrap();
        assert_eq!(parsed.param_count(), 1);
        let Statement::Select(sel) = parsed.bind(&[Value::from("Mickey")]).unwrap() else {
            panic!("not a SELECT");
        };
        assert_eq!(sel.atoms[0].terms[0], Term::val("Mickey"));

        let parsed = parse_statement("INSERT INTO Available VALUES (?, ?)").unwrap();
        let Statement::Insert { rows, .. } =
            parsed.bind(&[Value::from(1), Value::from("1A")]).unwrap()
        else {
            panic!("not an INSERT");
        };
        assert_eq!(rows[0], vec![Term::val(1), Term::val("1A")]);

        // Wrong arity is an error, not a silent truncation.
        assert!(matches!(
            parsed.bind(&[Value::from(1)]),
            Err(LogicError::Params {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn statement_error_paths_carry_positions() {
        for bad in [
            "CREATE TABLE",                  // missing name
            "CREATE TABLE T (x FLOAT)",      // unknown type
            "CREATE TABLE SELECT (x INT)",   // reserved relation
            "CREATE INDEX Available (0)",    // missing ON
            "INSERT INTO T",                 // missing VALUES
            "INSERT (1) INTO T",             // FOLLOWED BY form at top level
            "DELETE (1) FROM T",             // FOLLOWED BY form at top level
            "INSERT INTO T VALUES (@x)",     // variable in VALUES
            "SELECT @s FROM OPTIONAL A(@s)", // OPTIONAL outside a txn
            "SELECT PEEK @s FROM A(@s) CHOOSE 1 FOLLOWED BY (DELETE (@s) FROM A)",
            "SELECT ? FROM A(@s)",              // projected param
            "SELECT @s FROM A(@s) WHERE ? = ?", // param = param
            "SELECT @s FROM A(@s) WHERE ? = 1", // param = literal
            "GROUND",                           // missing id
            "GROUND -3",                        // negative id
            "SHOW TABLES",                      // unsupported
            "EXPLAIN SELECT",                   // unknown statement
            "SELECT @s FROM A(@s) LIMIT -1",    // bad limit
            "SELECT @s FROM A(@s) extra",       // trailing input
        ] {
            let err = parse_statement(bad).unwrap_err();
            assert!(matches!(err, LogicError::Parse { .. }), "{bad:?} → {err:?}");
        }
    }

    #[test]
    fn optional_read_is_rejected_with_position() {
        let err = parse_statement("SELECT @s FROM A(@s), OPTIONAL B(@s)").unwrap_err();
        let LogicError::Parse { at, reason } = err else {
            panic!("not a parse error");
        };
        assert!(reason.contains("OPTIONAL"));
        assert!(at > 0);
    }
}
