//! # qdb-logic
//!
//! The logic substrate of the quantum database: the Datalog-like
//! intermediate representation of resource transactions (§2 of the paper)
//! and the unification machinery (§3.2.1, Definitions 3.2–3.3) that the
//! composition and read-check algorithms are built on.
//!
//! * [`Term`], [`Var`], [`Atom`] — relational atoms over variables and
//!   constants.
//! * [`Substitution`] and [`mgu`] — most general unifiers (Definition 3.2).
//! * [`UnifPredicate`] — unification predicates (Definition 3.3): the
//!   conjunction of equality constraints corresponding to an mgu.
//! * [`Formula`] — the composed-body formulas of Lemma 3.4 / Theorem 3.5.
//! * [`ResourceTransaction`] — `U :-1 B` with optional body atoms.
//! * [`parse_transaction`] / [`parse_query`] — a text syntax for the
//!   Datalog-like notation (the paper's prototype likewise accepts only the
//!   intermediate representation, §4).
//!
//! ```
//! use qdb_logic::parse_transaction;
//!
//! let t = parse_transaction(
//!     "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
//!      Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
//! ).unwrap();
//! assert_eq!(t.updates.len(), 2);
//! assert_eq!(t.body.iter().filter(|b| b.optional).count(), 2);
//! ```

pub mod atom;
pub mod codec;
pub mod compose;
pub mod error;
pub mod formula;
pub mod parser;
pub mod predicate;
pub mod sql;
pub mod stmt;
pub mod substitution;
pub mod term;
pub mod transaction;
pub mod unify;
pub mod valuation;

pub use atom::Atom;
pub use compose::{compose, compose_renamed, compose_with_optionals};
pub use error::LogicError;
pub use formula::Formula;
pub use parser::{parse_atom, parse_query, parse_transaction, ParsedQuery};
pub use predicate::{EqConstraint, UnifPredicate};
pub use sql::{parse_sql_transaction, parse_statement};
pub use stmt::{ColumnRef, ParsedStatement, ReadMode, SelectStmt, Statement, TxnStmt};
pub use substitution::Substitution;
pub use term::{Term, Var, VarGen};
pub use transaction::{BodyAtom, ResourceTransaction, UpdateAtom, UpdateKind};
pub use unify::{mgu, unifiable};
pub use valuation::Valuation;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LogicError>;
