//! # qdb-client
//!
//! Blocking TCP client for `qdb-server`, mirroring the embedded
//! [`qdb_core::Session`] surface: [`Connection::execute`] for one-shot
//! statements, [`Connection::prepare`] → [`Connection::bind`] →
//! [`Connection::run`] for the parse-once hot path, and
//! [`Connection::pipeline`] for many statements per network round trip.
//! A small [`Pool`] hands out connections to multi-threaded callers.
//!
//! ```no_run
//! use qdb_client::Connection;
//! use qdb_storage::Value;
//!
//! let mut conn = Connection::connect("127.0.0.1:5433")?;
//! conn.execute("CREATE TABLE Available (flight INT, seat TEXT)")?;
//! let insert = conn.prepare("INSERT INTO Available VALUES (?, ?)")?;
//! for seat in ["5A", "5B"] {
//!     conn.bind_run(&insert, &[Value::from(123), Value::from(seat)])?;
//! }
//! let rows = conn.execute("SELECT * FROM Available(123, @s)")?;
//! assert_eq!(rows.rows().unwrap().len(), 2);
//! # Ok::<(), qdb_client::ClientError>(())
//! ```

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use qdb_core::wire::{self, Reply, Request, ServerStats};
use qdb_core::Metrics;
pub use qdb_core::Response;
use qdb_storage::Value;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write) other than the peer
    /// being gone — those are [`ClientError::Unavailable`].
    Io(std::io::Error),
    /// The server (or its host) actively refused the connection, reset
    /// it, or closed it on us: `ECONNREFUSED` at connect, a reset or
    /// EOF mid-conversation — including a server at its admission limit,
    /// which accepts and immediately closes. Distinct from
    /// [`ClientError::Io`] so callers (and [`Pool`]) can retry or fail
    /// over deliberately instead of pattern-matching `io::Error` kinds.
    Unavailable(std::io::Error),
    /// The peer sent bytes that do not decode as a valid reply, or a
    /// reply that does not match the request stream.
    Protocol(String),
    /// The server processed the request and reported an error.
    Server {
        /// Stable [`qdb_core::wire::code`] value.
        code: u8,
        /// Human-readable message (the engine error's display form).
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Unavailable(e) => write!(f, "server unavailable: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// `true` for [`ClientError::Unavailable`] — the class of failure a
    /// retry against the same (or another) server address may fix.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, ClientError::Unavailable(_))
    }

    /// `true` when the server refused the statement because it is a
    /// read-only replica (`wire::code::READ_ONLY`) — the signal to fail
    /// over to the primary (see [`FailoverClient`]).
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: wire::code::READ_ONLY,
                ..
            }
        )
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            // The peer is gone or never there; everything else (timeouts,
            // permission, interrupted DNS, ...) stays a generic I/O error.
            ConnectionRefused | ConnectionReset | ConnectionAborted | BrokenPipe | NotConnected
            | UnexpectedEof => ClientError::Unavailable(e),
            _ => ClientError::Io(e),
        }
    }
}

impl From<wire::WireError> for ClientError {
    fn from(e: wire::WireError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A statement prepared on the server, addressed by a client-assigned id.
/// Valid for the connection that prepared it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePrepared {
    id: u32,
    params: u32,
}

impl RemotePrepared {
    /// Number of positional `?` placeholders.
    pub fn param_count(&self) -> usize {
        self.params as usize
    }
}

/// A blocking connection to a `qdb-server`.
///
/// All methods issue one or more frames and read the matching replies;
/// the server guarantees in-order responses per connection, which is what
/// [`Connection::pipeline`] and [`Connection::bind_run`] exploit to put
/// several frames on the wire before the first reply arrives.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_request: u32,
    next_id: u32,
    last_server_stats: Option<ServerStats>,
    last_profile: Option<Box<qdb_core::ProfileReport>>,
    /// Cleared on any transport/protocol failure: the stream may hold
    /// stale replies, so the connection must not be reused (a [`Pool`]
    /// discards unhealthy connections instead of parking them).
    healthy: bool,
}

impl Connection {
    /// Connect and disable Nagle (frames are small and latency-bound).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_request: 0,
            next_id: 0,
            last_server_stats: None,
            last_profile: None,
            healthy: true,
        })
    }

    // -- plumbing ---------------------------------------------------------

    fn send(&mut self, request: &Request) -> Result<u32> {
        let id = self.next_request;
        self.next_request = self.next_request.wrapping_add(1);
        if let Err(e) = self.writer.write_all(&wire::encode_request(id, request)) {
            self.healthy = false;
            return Err(e.into());
        }
        Ok(id)
    }

    fn recv(&mut self, expect: u32) -> Result<Reply> {
        // Any transport or framing failure leaves the stream desynced:
        // mark the connection so it is not returned to a pool.
        self.recv_inner(expect)
            .inspect_err(|_| self.healthy = false)
    }

    fn recv_inner(&mut self, expect: u32) -> Result<Reply> {
        let frame = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            // A clean EOF between frames is still the server going away
            // mid-conversation — the typed unavailability, not a decode
            // bug (an admission-limited server closes exactly like this).
            ClientError::Unavailable(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "server closed the connection mid-conversation",
            ))
        })?;
        if frame.request_id != expect {
            return Err(ClientError::Protocol(format!(
                "response for request {} arrived while awaiting {expect} (ordering violated)",
                frame.request_id
            )));
        }
        Ok(wire::decode_reply(&frame)?)
    }

    /// `false` once any transport/protocol failure has been observed
    /// (server errors are clean request outcomes and do not count).
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Fold a reply into the `execute`-shaped result, stashing server
    /// stats (and the latency profile, when attached) from `SHOW METRICS`
    /// responses.
    fn settle(&mut self, reply: Reply) -> Result<Response> {
        match reply {
            Reply::Engine(r) => Ok(r),
            Reply::Stats {
                engine,
                server,
                profile,
            } => {
                self.last_server_stats = Some(server);
                if profile.is_some() {
                    self.last_profile = profile;
                }
                Ok(Response::Metrics(engine))
            }
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to an execute-class request: {other:?}"
            ))),
        }
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    // -- the Session-shaped surface ---------------------------------------

    /// Parse and execute one statement server-side.
    pub fn execute(&mut self, sql: &str) -> Result<Response> {
        let id = self.send(&Request::Execute {
            sql: sql.to_string(),
        })?;
        let reply = self.recv(id)?;
        self.settle(reply)
    }

    /// Parse once server-side; the returned handle re-executes via
    /// [`Connection::bind`] / [`Connection::run`] without re-parsing.
    pub fn prepare(&mut self, sql: &str) -> Result<RemotePrepared> {
        let stmt = self.fresh_id();
        let id = self.send(&Request::Prepare {
            stmt,
            sql: sql.to_string(),
        })?;
        match self.recv(id)? {
            Reply::Prepared { stmt: echo, params } if echo == stmt => {
                Ok(RemotePrepared { id: stmt, params })
            }
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to PREPARE: {other:?}"
            ))),
        }
    }

    /// Bind positional parameters, yielding a one-shot bound id.
    pub fn bind(&mut self, prepared: &RemotePrepared, params: &[Value]) -> Result<RemoteBound> {
        let bound = self.fresh_id();
        let id = self.send(&Request::Bind {
            stmt: prepared.id,
            bound,
            params: params.to_vec(),
        })?;
        match self.recv(id)? {
            Reply::Bound { bound: echo } if echo == bound => Ok(RemoteBound { id: bound }),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to BIND: {other:?}"
            ))),
        }
    }

    /// Run (and consume) a bound statement.
    pub fn run(&mut self, bound: RemoteBound) -> Result<Response> {
        let id = self.send(&Request::Run { bound: bound.id })?;
        let reply = self.recv(id)?;
        self.settle(reply)
    }

    /// Bind + run in one network flush (two pipelined frames, one
    /// round-trip latency) — the remote hot loop.
    pub fn bind_run(&mut self, prepared: &RemotePrepared, params: &[Value]) -> Result<Response> {
        let bound = self.fresh_id();
        let bind_id = self.send(&Request::Bind {
            stmt: prepared.id,
            bound,
            params: params.to_vec(),
        })?;
        let run_id = self.send(&Request::Run { bound })?;
        let bind_reply = self.recv(bind_id)?;
        match bind_reply {
            Reply::Bound { .. } => {
                let reply = self.recv(run_id)?;
                self.settle(reply)
            }
            Reply::Error { code, message } => {
                // The pipelined RUN then failed on the missing bound id;
                // drain its reply so the stream stays aligned.
                let _ = self.recv(run_id)?;
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to BIND: {other:?}"
            ))),
        }
    }

    /// Execute a batch of statements pipelined: all frames go out before
    /// the first reply is read, and replies come back in statement order.
    /// Per-statement failures land in the inner results; transport
    /// failures abort the batch.
    pub fn pipeline(&mut self, sqls: &[&str]) -> Result<Vec<Result<Response>>> {
        let mut ids = Vec::with_capacity(sqls.len());
        for sql in sqls {
            ids.push(self.send(&Request::Execute {
                sql: (*sql).to_string(),
            })?);
        }
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let reply = self.recv(id)?;
            out.push(self.settle(reply));
        }
        Ok(out)
    }

    /// `SHOW METRICS`, returning both the engine's metrics and the
    /// server's traffic counters that ride on the same response.
    pub fn server_stats(&mut self) -> Result<(Box<Metrics>, ServerStats)> {
        let response = self.execute("SHOW METRICS")?;
        let Response::Metrics(engine) = response else {
            return Err(ClientError::Protocol(format!(
                "SHOW METRICS answered {response:?}"
            )));
        };
        let server = self
            .last_server_stats
            .clone()
            .ok_or_else(|| ClientError::Protocol("metrics reply carried no server stats".into()))?;
        Ok((engine, server))
    }

    /// Server stats attached to the most recent `SHOW METRICS` response
    /// seen on this connection, if any.
    pub fn last_server_stats(&self) -> Option<&ServerStats> {
        self.last_server_stats.as_ref()
    }

    /// Latency histogram summaries attached to the most recent
    /// `SHOW METRICS` response, if the server sent them.
    pub fn last_profile(&self) -> Option<&qdb_core::ProfileReport> {
        self.last_profile.as_deref()
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("peer", &self.writer.peer_addr().ok())
            .finish_non_exhaustive()
    }
}

/// A bound statement id awaiting its `RUN` (consumed by
/// [`Connection::run`]).
#[derive(Debug, PartialEq, Eq)]
pub struct RemoteBound {
    id: u32,
}

/// Bounded exponential backoff with deterministic, seeded jitter.
///
/// Attempt `n` (0-based) waits `min(cap, base · 2ⁿ)` halved, plus a
/// jitter drawn from the other half by a [splitmix64] counter seeded at
/// construction — "equal jitter". The same seed always yields the same
/// delay sequence, so retry timing is reproducible in tests and in the
/// deterministic simulator, while distinct seeds decorrelate a thundering
/// herd of reconnecting clients.
///
/// [splitmix64]: https://prng.di.unimi.it/splitmix64.c
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First delay before jitter (attempt 0 waits between `base/2` and
    /// `base`).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter seed; fixed seed ⇒ fixed delay sequence.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x51db_5eed,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (0-based). Pure: the same
    /// `(policy, attempt)` always yields the same duration.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        let half = exp / 2;
        let half_nanos = half.as_nanos() as u64;
        if half_nanos == 0 {
            return exp;
        }
        let jitter = splitmix64(self.seed.wrapping_add(u64::from(attempt))) % (half_nanos + 1);
        half + Duration::from_nanos(jitter)
    }
}

/// Injectable sleep hook so backoff timing is testable (and mockable
/// under a simulated clock) without real waiting.
type Sleeper = Box<dyn Fn(Duration) + Send + Sync>;

/// A small blocking connection pool: threads check connections out and
/// drop the guard to return them. Connections are created lazily up to no
/// particular limit; at most `max_idle` are retained.
///
/// Unavailability handling is deterministic: a fresh connect that fails
/// [`ClientError::Unavailable`] is retried up to the configured retry
/// budget — exactly `retries + 1` attempts, observable via
/// [`Pool::connect_attempts`] — after which the typed error is reported
/// to the caller. Between attempts the pool sleeps per its
/// [`BackoffPolicy`]: bounded exponential delays with seeded jitter, so
/// the schedule is reproducible run to run. Any other failure reports
/// immediately.
pub struct Pool {
    addr: String,
    max_idle: usize,
    connect_retries: u32,
    backoff: BackoffPolicy,
    sleeper: Sleeper,
    connect_attempts: std::sync::atomic::AtomicU64,
    idle: Mutex<Vec<Connection>>,
    #[cfg(test)]
    connector: Option<Connector>,
}

/// Test-only connect hook so retry behavior is provable without racing
/// real listeners.
#[cfg(test)]
type Connector = Box<dyn Fn(&str) -> Result<Connection> + Send + Sync>;

impl Pool {
    /// Pool over `addr`, retaining up to `max_idle` parked connections.
    /// No connect retries; see [`Pool::with_connect_retries`].
    pub fn new(addr: impl Into<String>, max_idle: usize) -> Pool {
        Pool::with_connect_retries(addr, max_idle, 0)
    }

    /// Pool that retries an [`ClientError::Unavailable`] fresh connect up
    /// to `retries` extra times before reporting it, sleeping between
    /// attempts per the default [`BackoffPolicy`].
    pub fn with_connect_retries(addr: impl Into<String>, max_idle: usize, retries: u32) -> Pool {
        Pool {
            addr: addr.into(),
            max_idle,
            connect_retries: retries,
            backoff: BackoffPolicy::default(),
            sleeper: Box::new(std::thread::sleep),
            connect_attempts: std::sync::atomic::AtomicU64::new(0),
            idle: Mutex::new(Vec::new()),
            #[cfg(test)]
            connector: None,
        }
    }

    /// Replace the retry backoff policy (seed, base, cap).
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Pool {
        self.backoff = policy;
        self
    }

    /// Replace the sleep used between connect retries — tests and
    /// simulated-clock embedders observe or virtualize the waits instead
    /// of actually sleeping.
    pub fn with_sleeper(mut self, sleep: impl Fn(Duration) + Send + Sync + 'static) -> Pool {
        self.sleeper = Box::new(sleep);
        self
    }

    fn connect_once(&self) -> Result<Connection> {
        self.connect_attempts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        #[cfg(test)]
        if let Some(connector) = &self.connector {
            return connector(&self.addr);
        }
        Connection::connect(self.addr.as_str())
    }

    /// Check a connection out (reusing a parked one when available).
    pub fn get(&self) -> Result<PooledConnection<'_>> {
        let parked = {
            let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
            idle.pop()
        };
        let conn = match parked {
            Some(c) => c,
            None => {
                let mut attempt = 0;
                loop {
                    match self.connect_once() {
                        Ok(c) => break c,
                        Err(e) if e.is_unavailable() && attempt < self.connect_retries => {
                            (self.sleeper)(self.backoff.delay(attempt));
                            attempt += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        Ok(PooledConnection {
            pool: self,
            conn: Some(conn),
        })
    }

    /// Fresh connects attempted over this pool's lifetime (reuses of
    /// parked connections do not count) — what makes the retry budget
    /// verifiable.
    pub fn connect_attempts(&self) -> u64 {
        self.connect_attempts
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Parked connections right now.
    pub fn idle_count(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn put_back(&self, conn: Connection) {
        if !conn.is_healthy() {
            return; // a desynced stream must not serve the next checkout
        }
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("addr", &self.addr)
            .field("max_idle", &self.max_idle)
            .field("idle", &self.idle_count())
            .finish()
    }
}

/// A checked-out pool connection; derefs to [`Connection`] and returns to
/// the pool on drop.
pub struct PooledConnection<'p> {
    pool: &'p Pool,
    conn: Option<Connection>,
}

impl std::ops::Deref for PooledConnection<'_> {
    type Target = Connection;

    fn deref(&self) -> &Connection {
        self.conn.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledConnection<'_> {
    fn deref_mut(&mut self) -> &mut Connection {
        self.conn.as_mut().expect("present until drop")
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.put_back(conn);
        }
    }
}

/// A client for a replicated deployment: statements are routed to the
/// replica first (cheap, horizon-stale reads — see `docs/REPLICATION.md`),
/// and anything the replica refuses with the typed `READ_ONLY` code is
/// transparently re-executed on the primary. A replica that has become
/// unreachable (crashed, promoted elsewhere) also fails the statement
/// over to the primary instead of surfacing the transport error.
///
/// Connections are established lazily and re-established with the same
/// bounded, seeded backoff as [`Pool`] retries; a connection broken
/// mid-conversation is dropped and redialed once before the failure is
/// reported.
pub struct FailoverClient {
    primary_addr: String,
    replica_addr: Option<String>,
    primary: Option<Connection>,
    replica: Option<Connection>,
    connect_retries: u32,
    backoff: BackoffPolicy,
    sleeper: Sleeper,
}

impl FailoverClient {
    /// Client over `primary` with an optional read-preferred `replica`.
    pub fn new(primary: impl Into<String>, replica: Option<String>) -> FailoverClient {
        FailoverClient {
            primary_addr: primary.into(),
            replica_addr: replica,
            primary: None,
            replica: None,
            connect_retries: 3,
            backoff: BackoffPolicy::default(),
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Replace the reconnect backoff policy.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> FailoverClient {
        self.backoff = policy;
        self
    }

    /// Extra connect attempts per dial (same meaning as
    /// [`Pool::with_connect_retries`]).
    pub fn with_connect_retries(mut self, retries: u32) -> FailoverClient {
        self.connect_retries = retries;
        self
    }

    fn dial(
        addr: &str,
        retries: u32,
        backoff: &BackoffPolicy,
        sleeper: &Sleeper,
    ) -> Result<Connection> {
        let mut attempt = 0;
        loop {
            match Connection::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if e.is_unavailable() && attempt < retries => {
                    sleeper(backoff.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn execute_on(&mut self, on_primary: bool, sql: &str) -> Result<Response> {
        let (slot, addr) = if on_primary {
            (&mut self.primary, self.primary_addr.as_str())
        } else {
            (
                &mut self.replica,
                self.replica_addr.as_deref().expect("replica configured"),
            )
        };
        if slot.is_none() {
            *slot = Some(Self::dial(
                addr,
                self.connect_retries,
                &self.backoff,
                &self.sleeper,
            )?);
        }
        let conn = slot.as_mut().expect("dialed above");
        let result = conn.execute(sql);
        if matches!(&result, Err(e) if e.is_unavailable()) {
            // One transparent redial: the old stream is desynced.
            *slot = None;
            let mut fresh = Self::dial(addr, self.connect_retries, &self.backoff, &self.sleeper)?;
            let retried = fresh.execute(sql);
            *slot = Some(fresh);
            return retried;
        }
        result
    }

    /// Execute one statement: replica first when one is configured, with
    /// typed read-only refusals and replica unavailability failing over
    /// to the primary.
    pub fn execute(&mut self, sql: &str) -> Result<Response> {
        if self.replica_addr.is_some() {
            match self.execute_on(false, sql) {
                Err(e) if e.is_read_only() || e.is_unavailable() => {
                    if e.is_unavailable() {
                        self.replica = None;
                    }
                }
                other => return other,
            }
        }
        self.execute_on(true, sql)
    }
}

impl std::fmt::Debug for FailoverClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverClient")
            .field("primary", &self.primary_addr)
            .field("replica", &self.replica_addr)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_server::{Server, ServerConfig};

    fn spawn() -> qdb_server::ServerHandle {
        Server::spawn(&ServerConfig::default()).expect("loopback server")
    }

    #[test]
    fn execute_prepare_bind_run_roundtrip() {
        let server = spawn();
        let mut conn = Connection::connect(server.addr()).unwrap();
        assert!(matches!(
            conn.execute("CREATE TABLE R (a INT, b TEXT)").unwrap(),
            Response::Ack
        ));
        let insert = conn.prepare("INSERT INTO R VALUES (?, ?)").unwrap();
        assert_eq!(insert.param_count(), 2);
        for i in 0..3 {
            let r = conn
                .bind_run(&insert, &[Value::from(i), Value::from("x")])
                .unwrap();
            assert_eq!(r, Response::Written(true));
        }
        // Explicit two-step bind → run as well.
        let bound = conn
            .bind(&insert, &[Value::from(9), Value::from("y")])
            .unwrap();
        assert_eq!(conn.run(bound).unwrap(), Response::Written(true));
        let rows = conn.execute("SELECT * FROM R(@a, @b)").unwrap();
        assert_eq!(rows.rows().unwrap().len(), 4);
        server.shutdown();
    }

    #[test]
    fn server_errors_surface_with_codes_and_the_connection_survives() {
        let server = spawn();
        let mut conn = Connection::connect(server.addr()).unwrap();
        let err = conn.execute("SELECT * FROM Missing(@x)").unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server {
                code: wire::code::STORAGE,
                ..
            }
        ));
        let err = conn.execute("INSERT INTO R VALUES (?)").unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server {
                code: wire::code::PARAMS,
                ..
            }
        ));
        assert!(matches!(
            conn.execute("SHOW PENDING").unwrap(),
            Response::Pending(_)
        ));
        server.shutdown();
    }

    #[test]
    fn pipeline_preserves_statement_order() {
        let server = spawn();
        let mut conn = Connection::connect(server.addr()).unwrap();
        let results = conn
            .pipeline(&[
                "CREATE TABLE P (v INT)",
                "INSERT INTO P VALUES (1)",
                "NOT SQL AT ALL",
                "SELECT * FROM P(@v)",
                "SHOW METRICS",
            ])
            .unwrap();
        assert_eq!(results.len(), 5);
        assert!(matches!(results[0], Ok(Response::Ack)));
        assert!(matches!(results[1], Ok(Response::Written(true))));
        assert!(matches!(
            results[2],
            Err(ClientError::Server {
                code: wire::code::LOGIC,
                ..
            })
        ));
        assert_eq!(results[3].as_ref().unwrap().rows().unwrap().len(), 1);
        assert!(matches!(results[4], Ok(Response::Metrics(_))));
        let stats = conn.last_server_stats().expect("stats attached");
        assert!(stats.frames_decoded >= 5);
        server.shutdown();
    }

    #[test]
    fn profile_and_events_travel_the_wire() {
        let server = spawn();
        let mut conn = Connection::connect(server.addr()).unwrap();
        conn.execute("CREATE TABLE W (v INT)").unwrap();
        conn.execute("INSERT INTO W VALUES (1)").unwrap();
        conn.execute("SELECT * FROM W(@v)").unwrap();
        let resp = conn.execute("SHOW PROFILE").unwrap();
        let profile = resp.profile().expect("SHOW PROFILE answers a profile");
        assert!(
            profile
                .classes
                .iter()
                .any(|(c, s)| c == "INSERT" && s.count == 1 && s.p50_ns > 0),
            "{profile:?}"
        );
        assert!(
            profile
                .phases
                .iter()
                .any(|(p, s)| p == "parse" && s.count > 0),
            "{profile:?}"
        );
        let resp = conn.execute("SHOW EVENTS LIMIT 50").unwrap();
        let events = resp.events().expect("SHOW EVENTS answers events");
        assert!(!events.is_empty());
        // SHOW METRICS carries the same summaries alongside server stats.
        conn.execute("SHOW METRICS").unwrap();
        let profile = conn.last_profile().expect("metrics reply carries profile");
        assert!(profile.classes.iter().any(|(c, _)| c == "SELECT"));
        server.shutdown();
    }

    #[test]
    fn pool_discards_connections_broken_mid_conversation() {
        let server = spawn();
        let pool = Pool::new(server.addr().to_string(), 2);
        {
            let mut c = pool.get().unwrap();
            c.execute("SHOW PENDING").unwrap();
            assert!(c.is_healthy());
            // The server goes away under the checked-out connection; the
            // next call fails at the transport and taints it.
            server.shutdown();
            let err = c.execute("SHOW PENDING").unwrap_err();
            assert!(matches!(
                err,
                ClientError::Unavailable(_) | ClientError::Io(_) | ClientError::Protocol(_)
            ));
            assert!(!c.is_healthy());
        }
        assert_eq!(pool.idle_count(), 0, "a desynced stream must not be parked");
    }

    #[test]
    fn refused_connect_is_typed_not_generic_io() {
        // Bind-then-drop yields a port with nothing listening.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = Connection::connect(dead).unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert!(matches!(err, ClientError::Unavailable(_)));
    }

    #[test]
    fn pool_reports_unavailability_after_a_deterministic_attempt_count() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let pool = Pool::with_connect_retries(dead.to_string(), 2, 3);
        let err = pool.get().map(|_| ()).unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert_eq!(pool.connect_attempts(), 4, "retries + 1, no more, no less");
        // Failing again costs exactly another budget, not a growing one.
        let err = pool.get().map(|_| ()).unwrap_err();
        assert!(err.is_unavailable());
        assert_eq!(pool.connect_attempts(), 8);
    }

    #[test]
    fn pool_retries_transient_refusal_then_succeeds() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let server = spawn();
        let addr = server.addr().to_string();
        let mut pool = Pool::with_connect_retries(addr, 2, 2);
        // Deterministic flaky connector: refuse twice, then connect for
        // real. (Injection is test-only; production always dials.)
        let failures = std::sync::Arc::new(AtomicU32::new(0));
        let flaky = std::sync::Arc::clone(&failures);
        pool.connector = Some(Box::new(move |addr: &str| {
            if flaky.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(ClientError::Unavailable(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "synthetic refusal",
                )))
            } else {
                Connection::connect(addr)
            }
        }));
        {
            let mut c = pool.get().expect("third attempt connects");
            assert!(matches!(
                c.execute("SHOW PENDING").unwrap(),
                Response::Pending(_)
            ));
        }
        assert_eq!(pool.connect_attempts(), 3);
        // A budget smaller than the failure streak reports instead.
        let mut pool = Pool::with_connect_retries(server.addr().to_string(), 2, 1);
        pool.connector = Some(Box::new(move |_addr: &str| {
            Err(ClientError::Unavailable(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "synthetic refusal",
            )))
        }));
        let err = pool.get().map(|_| ()).unwrap_err();
        assert!(err.is_unavailable());
        assert_eq!(pool.connect_attempts(), 2);
        server.shutdown();
    }

    #[test]
    fn unavailable_covers_the_disconnect_error_kind_matrix() {
        use std::io::ErrorKind::*;
        // Every way a peer can be gone maps to the typed retryable error…
        for kind in [
            ConnectionRefused,
            ConnectionReset,
            ConnectionAborted,
            BrokenPipe,
            NotConnected,
            UnexpectedEof,
        ] {
            let e = ClientError::from(std::io::Error::new(kind, "gone"));
            assert!(e.is_unavailable(), "{kind:?} must map to Unavailable");
        }
        // …while local/transient conditions stay generic I/O errors that
        // a blind retry would not fix.
        for kind in [
            TimedOut,
            PermissionDenied,
            WouldBlock,
            Interrupted,
            OutOfMemory,
        ] {
            let e = ClientError::from(std::io::Error::new(kind, "local"));
            assert!(
                matches!(e, ClientError::Io(_)),
                "{kind:?} must stay ClientError::Io"
            );
        }
    }

    #[test]
    fn eof_mid_frame_is_unavailable_and_taints_the_connection() {
        use std::io::Read;
        // A hand-rolled peer that answers with half a frame then hangs up
        // — the worst-case crash point for a streaming server.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 256];
            let _ = s.read(&mut sink);
            // Length prefix claims 100 body bytes; send only 3.
            s.write_all(&[100, 0, 0, 0, 0x18, 1, 0]).unwrap();
        });
        let mut conn = Connection::connect(addr).unwrap();
        let err = conn.execute("SHOW PENDING").unwrap_err();
        assert!(err.is_unavailable(), "mid-frame EOF must be typed: {err}");
        assert!(
            !conn.is_healthy(),
            "a desynced stream must not look reusable"
        );
        peer.join().unwrap();
    }

    #[test]
    fn connect_backoff_is_bounded_deterministic_and_injectable() {
        use std::sync::{Arc, Mutex};
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(60),
            seed: 42,
        };
        let record = |sleeps: &Arc<Mutex<Vec<Duration>>>| {
            let sink = Arc::clone(sleeps);
            move |d: Duration| sink.lock().unwrap().push(d)
        };
        let sleeps = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::with_connect_retries(dead.to_string(), 2, 5)
            .with_backoff(policy.clone())
            .with_sleeper(record(&sleeps));
        assert!(pool.get().map(|_| ()).unwrap_err().is_unavailable());
        let observed = sleeps.lock().unwrap().clone();
        assert_eq!(observed.len(), 5, "one sleep between each pair of attempts");
        for (i, d) in observed.iter().enumerate() {
            let exp = policy.base * 2u32.pow(i as u32);
            assert!(*d <= policy.cap, "attempt {i} slept {d:?} over the cap");
            assert!(
                *d >= exp.min(policy.cap) / 2,
                "attempt {i} slept {d:?}, under half the exponential floor"
            );
            assert_eq!(*d, policy.delay(i as u32), "schedule must be pure");
        }
        // Same seed ⇒ identical schedule; different seed ⇒ different
        // jitter (decorrelated clients).
        let sleeps2 = Arc::new(Mutex::new(Vec::new()));
        let pool2 = Pool::with_connect_retries(dead.to_string(), 2, 5)
            .with_backoff(policy.clone())
            .with_sleeper(record(&sleeps2));
        assert!(pool2.get().is_err());
        assert_eq!(observed, *sleeps2.lock().unwrap());
        let reseeded = BackoffPolicy { seed: 43, ..policy };
        assert_ne!(
            (0..5).map(|i| reseeded.delay(i)).collect::<Vec<_>>(),
            observed
        );
    }

    #[test]
    fn failover_client_reads_from_replica_and_writes_through_primary() {
        let primary = spawn();
        let mut seed = Connection::connect(primary.addr()).unwrap();
        seed.execute("CREATE TABLE Available (flight INT, seat TEXT)")
            .unwrap();
        seed.execute("INSERT INTO Available VALUES (1, '1A')")
            .unwrap();
        let replica = Server::spawn(&ServerConfig {
            replicate_from: Some(primary.addr().to_string()),
            repl_poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        })
        .unwrap();
        // Wait for the replica to catch up before reading through it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut probe = Connection::connect(replica.addr()).unwrap();
        loop {
            match probe.execute("SELECT * FROM Available(@f, @s)") {
                Ok(Response::Rows(rows)) if rows.len() == 1 => break,
                _ => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "replica never caught up"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        }
        let mut client =
            FailoverClient::new(primary.addr().to_string(), Some(replica.addr().to_string()));
        // A read is answered by the replica.
        let rows = client.execute("SELECT * FROM Available(@f, @s)").unwrap();
        assert_eq!(rows.rows().unwrap().len(), 1);
        // A write bounces off the replica with READ_ONLY and lands on the
        // primary without the caller seeing the refusal.
        let written = client
            .execute("INSERT INTO Available VALUES (1, '1B')")
            .unwrap();
        assert_eq!(written, Response::Written(true));
        let (_, pstats) = {
            let mut c = Connection::connect(primary.addr()).unwrap();
            c.server_stats().unwrap()
        };
        assert_eq!(
            pstats.class("INSERT"),
            Some(2),
            "seed + failed-over write ran on the primary"
        );
        // Replica death degrades reads to the primary instead of erroring.
        replica.shutdown();
        let rows = client.execute("SELECT * FROM Available(@f, @s)").unwrap();
        assert!(!rows.rows().unwrap().is_empty());
        primary.shutdown();
    }

    #[test]
    fn pool_reuses_connections() {
        let server = spawn();
        let pool = Pool::new(server.addr().to_string(), 2);
        {
            let mut a = pool.get().unwrap();
            a.execute("CREATE TABLE Q (v INT)").unwrap();
            let mut b = pool.get().unwrap();
            b.execute("INSERT INTO Q VALUES (1)").unwrap();
        }
        assert_eq!(pool.idle_count(), 2);
        {
            let mut c = pool.get().unwrap();
            let rows = c.execute("SELECT * FROM Q(@v)").unwrap();
            assert_eq!(rows.rows().unwrap().len(), 1);
        }
        assert_eq!(pool.idle_count(), 2);
        let stats = server.stats();
        assert_eq!(stats.connections, 2, "third checkout must reuse");
        server.shutdown();
    }
}
