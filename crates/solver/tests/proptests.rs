//! Property tests for the grounding solver: soundness (returned solutions
//! verify), sequential-semantics correctness (solutions replay cleanly on
//! the real database), and agreement between atom orderings.

use proptest::prelude::*;
use qdb_logic::{parse_transaction, ResourceTransaction};
use qdb_solver::{AtomOrder, CachedSolution, Solver, TxnSpec};
use qdb_storage::{tuple, Database, Schema, ValueType};

fn seats_db(flights: i64, rows: usize) -> Database {
    let mut db = Database::new();
    db.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))
    .unwrap();
    db.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))
    .unwrap();
    db.table_mut("Available").unwrap().create_index(0).unwrap();
    for f in 1..=flights {
        for r in 1..=rows {
            for c in ["A", "B"] {
                db.insert("Available", tuple![f, format!("{r}{c}").as_str()])
                    .unwrap();
            }
        }
    }
    db
}

/// A booking with optionally fixed flight, possibly reading another
/// user's (pending) booking.
fn txn_for(spec: &(u8, Option<i64>, bool), i: usize) -> ResourceTransaction {
    let (_, flight, depends) = spec;
    let name = format!("u{i}");
    let f = flight.map_or("f".to_string(), |x| x.to_string());
    if *depends && i > 0 {
        let prev = format!("u{}", i - 1);
        parse_transaction(&format!(
            "-Available({f}, s), +Bookings('{name}', {f}, s) :-1 \
             Available({f}, s), Bookings('{prev}', f2, s2)"
        ))
        .unwrap()
    } else {
        parse_transaction(&format!(
            "-Available({f}, s), +Bookings('{name}', {f}, s) :-1 Available({f}, s)"
        ))
        .unwrap()
    }
}

fn arb_txn_spec() -> impl Strategy<Value = (u8, Option<i64>, bool)> {
    (any::<u8>(), prop::option::of(1i64..3), any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: whatever `solve` returns passes `verify`, and the write
    /// ops replay onto the real database without key violations.
    #[test]
    fn solutions_verify_and_replay(
        specs in prop::collection::vec(arb_txn_spec(), 1..6),
        rows in 1usize..4,
    ) {
        let db = seats_db(2, rows);
        let txns: Vec<ResourceTransaction> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| txn_for(s, i))
            .collect();
        let mut gen = qdb_logic::VarGen::new();
        let fresh: Vec<ResourceTransaction> = txns.iter().map(|t| t.freshen(&mut gen)).collect();
        let spec_list: Vec<TxnSpec> = fresh.iter().map(TxnSpec::required_only).collect();
        let mut solver = Solver::default();
        if let Some(sol) = solver.solve(&db, &[], &spec_list).unwrap() {
            prop_assert!(solver.verify(&db, &[], &spec_list, &sol.valuations).unwrap());
            // Replay sequentially on a real database copy.
            let mut world = db.clone();
            for (txn, val) in fresh.iter().zip(&sol.valuations) {
                for op in txn.write_ops(val).unwrap() {
                    world.apply(&op).unwrap();
                }
            }
            // Bookings count equals transactions; seats conserved.
            let booked = world.table("Bookings").unwrap().len();
            prop_assert_eq!(booked, fresh.len());
        }
    }

    /// Static and most-constrained orderings agree on satisfiability
    /// (they may find different witnesses).
    #[test]
    fn orderings_agree(
        specs in prop::collection::vec(arb_txn_spec(), 1..5),
        rows in 1usize..3,
    ) {
        let db = seats_db(2, rows);
        let mut gen = qdb_logic::VarGen::new();
        let fresh: Vec<ResourceTransaction> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| txn_for(s, i).freshen(&mut gen))
            .collect();
        let spec_list: Vec<TxnSpec> = fresh.iter().map(TxnSpec::required_only).collect();
        let mut dynamic = Solver::new(AtomOrder::MostConstrained);
        let mut fixed = Solver::new(AtomOrder::Static);
        let a = dynamic.solve(&db, &[], &spec_list).unwrap().is_some();
        let b = fixed.solve(&db, &[], &spec_list).unwrap().is_some();
        prop_assert_eq!(a, b);
    }

    /// Cache-extension monotonicity: a sequence admitted step-by-step via
    /// try_extend is also satisfiable from scratch, and the cache verifies
    /// at every step.
    #[test]
    fn cache_extension_is_sound(
        specs in prop::collection::vec(arb_txn_spec(), 1..6),
    ) {
        let db = seats_db(2, 2);
        let mut solver = Solver::default();
        let mut cache = CachedSolution::empty();
        let mut admitted: Vec<ResourceTransaction> = Vec::new();
        let mut gen = qdb_logic::VarGen::new();
        for (i, s) in specs.iter().enumerate() {
            let txn = txn_for(s, i).freshen(&mut gen);
            let refs: Vec<&ResourceTransaction> = admitted.iter().collect();
            if cache.try_extend(&mut solver, &db, &refs, &txn).unwrap() {
                admitted.push(txn);
                let refs: Vec<&ResourceTransaction> = admitted.iter().collect();
                prop_assert!(cache.verify(&mut solver, &db, &refs).unwrap());
                // From-scratch solve agrees the sequence is satisfiable.
                prop_assert!(
                    CachedSolution::resolve(&mut solver, &db, &refs).unwrap().is_some()
                );
            }
        }
    }

    /// enumerate_one returns distinct, individually valid groundings.
    #[test]
    fn enumeration_distinct_and_valid(rows in 1usize..4, max in 1usize..10) {
        let db = seats_db(1, rows);
        let txn = parse_transaction(
            "-Available(f, s), +Bookings('x', f, s) :-1 Available(f, s)",
        ).unwrap();
        let mut solver = Solver::default();
        let spec = TxnSpec::required_only(&txn);
        let vals = solver.enumerate_one(&db, &[], &spec, max).unwrap();
        prop_assert!(vals.len() <= max);
        prop_assert!(vals.len() <= rows * 2);
        let set: std::collections::BTreeSet<_> = vals.iter().cloned().collect();
        prop_assert_eq!(set.len(), vals.len(), "no duplicates");
        for v in &vals {
            prop_assert!(solver.verify(&db, &[], std::slice::from_ref(&spec), std::slice::from_ref(v)).unwrap());
        }
    }
}
