//! Property test: the streaming candidate cursor is observationally
//! identical to the materializing reference.
//!
//! For randomized databases (random schemas, rows, secondary indexes) and
//! randomized overlays (random applied insert/delete histories, including
//! cancellations), `Overlay::stream` must yield **exactly** the sequence
//! `Overlay::candidates` materializes — same tuples, same order — for
//! arbitrary bound patterns, and `count_up_to` must agree with the
//! sequence length under every cap. The `proptest` crate is not vendored
//! in this offline workspace, so the cases are driven by a seeded
//! splitmix64 generator (failures print the case seed).

use qdb_solver::{Overlay, SolverStats};
use qdb_storage::{Database, Schema, Tuple, Value, ValueType, WriteOp};

/// splitmix64 — tiny, seedable, good enough for case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const DOMAIN: i64 = 4;

fn random_tuple(rng: &mut Rng, arity: usize) -> Tuple {
    Tuple::from(
        (0..arity)
            .map(|_| Value::from(rng.below(DOMAIN as u64) as i64))
            .collect::<Vec<_>>(),
    )
}

/// A random database: 1–3 tables of arity 1–3 (full-row keys), random
/// rows from a small integer domain, random secondary indexes.
fn random_db(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    let tables = 1 + rng.below(3) as usize;
    for t in 0..tables {
        let arity = 1 + rng.below(3) as usize;
        let names: Vec<String> = (0..arity).map(|c| format!("c{c}")).collect();
        let cols: Vec<(&str, ValueType)> =
            names.iter().map(|n| (n.as_str(), ValueType::Int)).collect();
        db.create_table(Schema::new(format!("R{t}"), cols)).unwrap();
        let rows = rng.below(20) as usize;
        for _ in 0..rows {
            let _ = db.insert(&format!("R{t}"), random_tuple(rng, arity));
        }
        for c in 0..arity {
            if rng.chance(40) {
                db.table_mut(&format!("R{t}"))
                    .unwrap()
                    .create_index(c)
                    .unwrap();
            }
        }
    }
    db
}

/// A random overlay history over `db`: applied inserts and deletes of
/// random tuples (conflicting inserts skipped, exactly as the search
/// does), with occasional rollbacks to exercise the journal.
fn random_overlay(rng: &mut Rng, db: &Database) -> Overlay {
    let mut ov = Overlay::new();
    let relations: Vec<String> = db
        .tables()
        .map(|t| t.schema().relation().to_string())
        .collect();
    let mut marks = Vec::new();
    for _ in 0..rng.below(30) {
        let rel = &relations[rng.below(relations.len() as u64) as usize];
        let arity = db.table(rel).unwrap().schema().arity();
        let tuple = random_tuple(rng, arity);
        let op = if rng.chance(50) {
            WriteOp::insert(rel.as_str(), tuple)
        } else {
            WriteOp::delete(rel.as_str(), tuple)
        };
        let _ = ov.try_apply(db, &op);
        if rng.chance(10) {
            marks.push(ov.mark());
        }
        if rng.chance(5) {
            if let Some(mark) = marks.pop() {
                ov.rollback(mark);
            }
        }
    }
    ov
}

fn random_bound(rng: &mut Rng, arity: usize) -> Vec<Option<Value>> {
    (0..arity)
        .map(|_| {
            if rng.chance(50) {
                Some(Value::from(rng.below(DOMAIN as u64 + 1) as i64)) // may miss
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn stream_equals_materialized_candidates_for_random_cases() {
    for case in 0..400u64 {
        let mut rng = Rng(0xC1DE_0000 + case);
        let db = random_db(&mut rng);
        let ov = random_overlay(&mut rng, &db);
        let mut stats = SolverStats::default();
        for table in db.tables() {
            let rel = table.schema().relation().to_string();
            let rid = db.resolve(&rel).unwrap();
            let arity = table.schema().arity();
            for _ in 0..4 {
                let bound = random_bound(&mut rng, arity);
                let expect = ov.candidates(&db, &rel, &bound, &mut stats).unwrap();
                let mut stream = ov.stream(&db, rid, bound.clone()).unwrap();
                let mut got = Vec::new();
                while let Some(t) = stream.next(&ov) {
                    got.push(t);
                }
                assert_eq!(
                    got, expect,
                    "case {case}: stream diverged on {rel} bound {bound:?}"
                );
                // Counts agree with the sequence under every cap.
                assert_eq!(
                    ov.count(&db, &rel, &bound).unwrap(),
                    expect.len(),
                    "case {case}: count mismatch on {rel}"
                );
                for cap in [0usize, 1, 2, expect.len(), expect.len() + 3] {
                    let (n, _) = ov.count_up_to_id(&db, rid, &bound, cap).unwrap();
                    assert_eq!(
                        n,
                        expect.len().min(cap),
                        "case {case}: count_up_to({cap}) mismatch on {rel}"
                    );
                }
            }
        }
    }
}

#[test]
fn stream_is_stable_across_rolled_back_interleaved_mutation() {
    // The search pulls, recurses (mutating the overlay), rolls back, and
    // pulls again. The stream must still produce the reference sequence.
    for case in 0..100u64 {
        let mut rng = Rng(0xFEED_0000 + case);
        let db = random_db(&mut rng);
        let mut ov = random_overlay(&mut rng, &db);
        let relations: Vec<String> = db
            .tables()
            .map(|t| t.schema().relation().to_string())
            .collect();
        let rel = relations[rng.below(relations.len() as u64) as usize].clone();
        let rid = db.resolve(&rel).unwrap();
        let arity = db.table(&rel).unwrap().schema().arity();
        let bound = random_bound(&mut rng, arity);
        let mut stats = SolverStats::default();
        let expect = ov.candidates(&db, &rel, &bound, &mut stats).unwrap();
        let mut stream = ov.stream(&db, rid, bound).unwrap();
        let mut got = Vec::new();
        while let Some(t) = stream.next(&ov) {
            got.push(t);
            // Speculative deeper-level work, rolled back before resuming.
            let mark = ov.mark();
            for _ in 0..rng.below(4) {
                let r = &relations[rng.below(relations.len() as u64) as usize];
                let a = db.table(r).unwrap().schema().arity();
                let tuple = random_tuple(&mut rng, a);
                let op = if rng.chance(50) {
                    WriteOp::insert(r.as_str(), tuple)
                } else {
                    WriteOp::delete(r.as_str(), tuple)
                };
                let _ = ov.try_apply(&db, &op);
            }
            ov.rollback(mark);
        }
        assert_eq!(got, expect, "case {case}: interleaved stream diverged");
    }
}
