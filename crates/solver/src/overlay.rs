//! Virtual database states: base database + pending updates.
//!
//! When checking whether transaction `Ti` can ground, its body atoms must be
//! evaluated against the database **as modified by the updates of
//! `T0..Ti-1`** under their chosen groundings (Definition 3.1). `Overlay`
//! provides that view without copying the base: per-relation insert/delete
//! deltas with a journal for cheap backtracking.
//!
//! Deltas are keyed by interned [`RelationId`]s (dense vector index — no
//! string hashing anywhere on the search's per-node path), and candidate
//! enumeration **streams**: [`Overlay::stream`] yields one visible tuple at
//! a time from an index-narrowed base cursor chained with the overlay
//! insert set, instead of materializing a `Vec` per search node.

use std::collections::BTreeSet;
use std::ops::Bound;

use qdb_storage::{Database, RelationId, Table, TableCursor, Tuple, Value, WriteOp};

use crate::error::SolverError;
use crate::Result;

/// One journal entry (how to undo an applied op). Relations are interned
/// ids, so journaling is copy-only apart from the tuple refcount.
#[derive(Debug, Clone)]
enum Undo {
    /// Remove `tuple` from the insert set of the relation.
    UnInsert { rid: RelationId, tuple: Tuple },
    /// Remove `tuple` from the delete set of the relation.
    UnDelete { rid: RelationId, tuple: Tuple },
    /// Re-add `tuple` to the delete set (an insert cancelled the delete).
    ReDelete { rid: RelationId, tuple: Tuple },
    /// Re-add `tuple` to the insert set (a delete cancelled the insert).
    ReInsert { rid: RelationId, tuple: Tuple },
    /// The op was a no-op (delete of an absent tuple).
    Noop,
}

/// A rollback point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayMark(usize);

/// Per-relation insert/delete deltas.
#[derive(Debug, Default, Clone)]
struct OverlayRel {
    inserts: BTreeSet<Tuple>,
    deletes: BTreeSet<Tuple>,
}

/// Insert/delete deltas on top of a base [`Database`], keyed by interned
/// relation id.
#[derive(Debug, Default, Clone)]
pub struct Overlay {
    rels: Vec<OverlayRel>,
    journal: Vec<Undo>,
}

impl Overlay {
    /// Empty overlay (view = base).
    pub fn new() -> Self {
        Overlay::default()
    }

    fn rel(&self, rid: RelationId) -> Option<&OverlayRel> {
        self.rels.get(rid.index())
    }

    fn rel_mut(&mut self, rid: RelationId) -> &mut OverlayRel {
        if rid.index() >= self.rels.len() {
            self.rels.resize_with(rid.index() + 1, OverlayRel::default);
        }
        &mut self.rels[rid.index()]
    }

    /// Is `tuple` visible in `base + self`? (String-keyed convenience —
    /// resolves once; hot paths use [`Overlay::visible_id`].)
    pub fn visible(&self, base: &Database, relation: &str, tuple: &Tuple) -> bool {
        base.try_resolve(relation)
            .is_some_and(|rid| self.visible_id(base, rid, tuple))
    }

    /// Is `tuple` visible in `base + self`?
    pub fn visible_id(&self, base: &Database, rid: RelationId, tuple: &Tuple) -> bool {
        if let Some(rel) = self.rel(rid) {
            if rel.inserts.contains(tuple) {
                return true;
            }
            if rel.deletes.contains(tuple) {
                return false;
            }
        }
        base.contains_id(rid, tuple)
    }

    /// Is `tuple` in the relation's overlay delete set?
    pub fn is_deleted(&self, rid: RelationId, tuple: &Tuple) -> bool {
        self.rel(rid).is_some_and(|r| r.deletes.contains(tuple))
    }

    /// Does the relation have any overlay deletes?
    pub fn has_deletes(&self, rid: RelationId) -> bool {
        self.rel(rid).is_some_and(|r| !r.deletes.is_empty())
    }

    /// The smallest overlay insert of `rid` strictly greater than `after`
    /// (`None` = from the start) that matches `bound`. Resumable-cursor
    /// primitive behind [`CandidateIter`]: because it re-seeks by value, it
    /// stays correct even though the insert set may have been mutated and
    /// restored between calls.
    fn next_insert(
        &self,
        rid: RelationId,
        after: Option<&Tuple>,
        bound: &[Option<Value>],
    ) -> Option<Tuple> {
        let rel = self.rel(rid)?;
        let start: Bound<&Tuple> = match after {
            Some(t) => Bound::Excluded(t),
            None => Bound::Unbounded,
        };
        rel.inserts
            .range((start, Bound::Unbounded))
            .find(|t| Table::matches(t, bound))
            .cloned()
    }

    /// All visible tuples of `relation` matching the column constraints
    /// `bound` (`Some(v)` pins a column), **materialized**. Base rows come
    /// first (in key order), then overlay inserts (in tuple order) —
    /// deterministic.
    ///
    /// This is the reference implementation the streaming
    /// [`Overlay::stream`] is property-tested against; the solver's hot
    /// path never calls it. Every call counts itself in
    /// `stats.candidate_vecs`, which is how "zero materializations on the
    /// fast path" stays a *checkable* claim rather than a vacuous one.
    pub fn candidates(
        &self,
        base: &Database,
        relation: &str,
        bound: &[Option<Value>],
        stats: &mut crate::stats::SolverStats,
    ) -> Result<Vec<Tuple>> {
        stats.candidate_vecs += 1;
        let rid = base.resolve(relation).map_err(SolverError::Storage)?;
        let table = base.table_by_id(rid);
        check_arity(table, relation, bound)?;
        let empty = BTreeSet::new();
        let (deleted, inserts) = match self.rel(rid) {
            Some(rel) => (&rel.deletes, &rel.inserts),
            None => (&empty, &empty),
        };
        let mut out: Vec<Tuple> = table
            .select(bound)
            .filter(|t| !deleted.contains(*t))
            .cloned()
            .collect();
        out.extend(inserts.iter().filter(|t| Table::matches(t, bound)).cloned());
        Ok(out)
    }

    /// Open a **streaming** candidate cursor over the visible tuples of
    /// `rid` matching `bound`: an index-narrowed base cursor with overlay
    /// deletes filtered in place, chained with the overlay insert set.
    /// Yields exactly the sequence [`Overlay::candidates`] would
    /// materialize, one refcount-bump [`Tuple`] at a time — zero per-node
    /// vectors.
    ///
    /// The cursor borrows the *base* only; the overlay is passed to each
    /// [`CandidateIter::next`] call, so the caller may mutate (and restore)
    /// the overlay between pulls — which is exactly what the backtracking
    /// search does.
    pub fn stream<'a>(
        &self,
        base: &'a Database,
        rid: RelationId,
        bound: Vec<Option<Value>>,
    ) -> Result<CandidateIter<'a>> {
        let table = base.table_by_id(rid);
        check_arity(table, base.relation_name(rid), &bound)?;
        let cursor = table.cursor(&bound);
        let index_backed = cursor.is_index_backed();
        Ok(CandidateIter {
            rid,
            base: cursor,
            base_done: false,
            last_insert: None,
            index_backed,
            bound,
        })
    }

    /// Count of visible tuples matching `bound`, saturating at `cap`
    /// (used by the dynamic atom ordering to pick the most constrained
    /// atom first; beyond the cap relative order no longer matters).
    pub fn count_up_to(
        &self,
        base: &Database,
        relation: &str,
        bound: &[Option<Value>],
        cap: usize,
    ) -> Result<usize> {
        let rid = base.resolve(relation).map_err(SolverError::Storage)?;
        self.count_up_to_id(base, rid, bound, cap).map(|(n, _)| n)
    }

    /// Count of visible tuples matching `bound` (saturating at `cap`) plus
    /// whether the base portion was answered from an index. When the
    /// relation has no overlay deletes, the base count comes from
    /// [`Table::count_up_to`] — an index bucket length when a single bound
    /// column is indexed, no row iteration at all.
    pub fn count_up_to_id(
        &self,
        base: &Database,
        rid: RelationId,
        bound: &[Option<Value>],
        cap: usize,
    ) -> Result<(usize, bool)> {
        let table = base.table_by_id(rid);
        check_arity(table, base.relation_name(rid), bound)?;
        let rel = self.rel(rid);
        let (mut n, index_backed) = match rel {
            Some(r) if !r.deletes.is_empty() => {
                let cursor = table.cursor(bound);
                let index_backed = cursor.is_index_backed();
                let n = cursor
                    .filter(|t| Table::matches(t, bound) && !r.deletes.contains(*t))
                    .take(cap)
                    .count();
                (n, index_backed)
            }
            _ => table.count_up_to(bound, cap),
        };
        if n < cap {
            if let Some(r) = rel {
                n += r
                    .inserts
                    .iter()
                    .filter(|t| Table::matches(t, bound))
                    .take(cap - n)
                    .count();
            }
        }
        Ok((n, index_backed))
    }

    /// Exact count of visible tuples matching `bound`.
    pub fn count(&self, base: &Database, relation: &str, bound: &[Option<Value>]) -> Result<usize> {
        self.count_up_to(base, relation, bound, usize::MAX)
    }

    /// Apply a write op on the virtual state (resolves the relation name
    /// once; hot paths use [`Overlay::apply_id`]).
    ///
    /// * insert of a visible tuple → `Err` — set semantics make the
    ///   grounding that produced this op inconsistent, the caller
    ///   backtracks;
    /// * insert that re-creates a deleted tuple → cancels the delete;
    /// * delete of an overlay-inserted tuple → cancels the insert;
    /// * delete of an absent tuple → journaled no-op (blind deletes are
    ///   silent no-ops in SQL, and the Lemma 3.4 proof never relies on a
    ///   deleted tuple having existed).
    pub fn apply(&mut self, base: &Database, op: &WriteOp) -> Result<bool> {
        let rid = base.resolve(op.relation()).map_err(SolverError::Storage)?;
        self.apply_id(base, rid, op.is_insert(), op.tuple())
    }

    /// Apply one update on the virtual state, by interned relation id. See
    /// [`Overlay::apply`] for the semantics.
    pub fn apply_id(
        &mut self,
        base: &Database,
        rid: RelationId,
        insert: bool,
        tuple: &Tuple,
    ) -> Result<bool> {
        if insert {
            if self.visible_id(base, rid, tuple) {
                return Err(SolverError::CacheInconsistent(format!(
                    "insert of visible tuple {}{tuple}",
                    base.relation_name(rid)
                )));
            }
            let rel = self.rel_mut(rid);
            if rel.deletes.remove(tuple) {
                self.journal.push(Undo::ReDelete {
                    rid,
                    tuple: tuple.clone(),
                });
            } else {
                rel.inserts.insert(tuple.clone());
                self.journal.push(Undo::UnInsert {
                    rid,
                    tuple: tuple.clone(),
                });
            }
            Ok(true)
        } else {
            let rel = self.rel_mut(rid);
            if rel.inserts.remove(tuple) {
                self.journal.push(Undo::ReInsert {
                    rid,
                    tuple: tuple.clone(),
                });
                Ok(true)
            } else if base.contains_id(rid, tuple) && !rel.deletes.contains(tuple) {
                rel.deletes.insert(tuple.clone());
                self.journal.push(Undo::UnDelete {
                    rid,
                    tuple: tuple.clone(),
                });
                Ok(true)
            } else {
                self.journal.push(Undo::Noop);
                Ok(false)
            }
        }
    }

    /// Apply an op, treating an insert-conflict as a soft failure (`false`)
    /// rather than an error, and rolling nothing back. Used by the search,
    /// which backtracks on `false`.
    pub fn try_apply(&mut self, base: &Database, op: &WriteOp) -> bool {
        match base.try_resolve(op.relation()) {
            Some(rid) => self.try_apply_id(base, rid, op.is_insert(), op.tuple()),
            None => false,
        }
    }

    /// [`Overlay::try_apply`] by interned relation id.
    pub fn try_apply_id(
        &mut self,
        base: &Database,
        rid: RelationId,
        insert: bool,
        tuple: &Tuple,
    ) -> bool {
        if insert && self.visible_id(base, rid, tuple) {
            return false;
        }
        // Cannot fail for deletes or non-conflicting inserts.
        self.apply_id(base, rid, insert, tuple)
            .expect("conflict pre-checked");
        true
    }

    /// Current rollback point.
    pub fn mark(&self) -> OverlayMark {
        OverlayMark(self.journal.len())
    }

    /// Undo every op applied since `mark`.
    pub fn rollback(&mut self, mark: OverlayMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal non-empty") {
                Undo::UnInsert { rid, tuple } => {
                    self.rels[rid.index()].inserts.remove(&tuple);
                }
                Undo::UnDelete { rid, tuple } => {
                    self.rels[rid.index()].deletes.remove(&tuple);
                }
                Undo::ReDelete { rid, tuple } => {
                    self.rels[rid.index()].deletes.insert(tuple);
                }
                Undo::ReInsert { rid, tuple } => {
                    self.rels[rid.index()].inserts.insert(tuple);
                }
                Undo::Noop => {}
            }
        }
    }

    /// Number of journaled operations.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Do two overlays describe the same virtual-state deltas (journal
    /// history ignored)? Used by debug assertions that validate cached
    /// overlays against freshly built ones.
    pub fn same_deltas(&self, other: &Overlay) -> bool {
        let longest = self.rels.len().max(other.rels.len());
        let empty = OverlayRel::default();
        (0..longest).all(|i| {
            let a = self.rels.get(i).unwrap_or(&empty);
            let b = other.rels.get(i).unwrap_or(&empty);
            a.inserts == b.inserts && a.deletes == b.deletes
        })
    }

    /// Materialize the overlay into the base database (used when grounding
    /// is final rather than speculative). Consumes the overlay.
    pub fn commit_into(self, base: &mut Database) -> Result<()> {
        for (i, rel) in self.rels.iter().enumerate() {
            let rid = rid_at(i);
            for t in &rel.deletes {
                base.delete_id(rid, t)?;
            }
            for t in &rel.inserts {
                base.insert_id(rid, t.clone())?;
            }
        }
        Ok(())
    }
}

/// Reconstruct a [`RelationId`] from a dense index (the overlay's vector
/// position mirrors the database's id space).
fn rid_at(index: usize) -> RelationId {
    // The only way indexes enter the overlay is through RelationIds the
    // database handed out, so a round-trip through the public resolve API
    // is not needed; the id space is dense by construction.
    RelationId::from_index(index)
}

fn check_arity(table: &Table, relation: &str, bound: &[Option<Value>]) -> Result<()> {
    if bound.len() != table.schema().arity() {
        return Err(SolverError::Storage(
            qdb_storage::StorageError::ArityMismatch {
                relation: relation.to_string(),
                expected: table.schema().arity(),
                got: bound.len(),
            },
        ));
    }
    Ok(())
}

/// Streaming candidate cursor — see [`Overlay::stream`].
///
/// Not a [`std::iter::Iterator`]: each pull takes the overlay by shared
/// reference so the search can hold the cursor open across overlay
/// mutations that it rolls back before the next pull.
#[derive(Debug)]
pub struct CandidateIter<'a> {
    rid: RelationId,
    bound: Vec<Option<Value>>,
    base: TableCursor<'a>,
    base_done: bool,
    last_insert: Option<Tuple>,
    index_backed: bool,
}

impl<'a> CandidateIter<'a> {
    /// The next visible candidate, or `None` when exhausted.
    pub fn next(&mut self, overlay: &Overlay) -> Option<Tuple> {
        if !self.base_done {
            for row in self.base.by_ref() {
                if Table::matches(row, &self.bound) && !overlay.is_deleted(self.rid, row) {
                    return Some(row.clone());
                }
            }
            self.base_done = true;
        }
        let next = overlay.next_insert(self.rid, self.last_insert.as_ref(), &self.bound)?;
        self.last_insert = Some(next.clone());
        Some(next)
    }

    /// Was the base portion narrowed by a secondary index?
    pub fn is_index_backed(&self) -> bool {
        self.index_backed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_storage::{tuple, Schema, ValueType};

    fn base() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "A",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("A", tuple![1, "1A"]).unwrap();
        db.insert("A", tuple![1, "1B"]).unwrap();
        db
    }

    #[test]
    fn visibility_tracks_deltas() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        assert!(!ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.apply(&db, &WriteOp::insert("A", tuple![2, "9Z"]))
            .unwrap();
        assert!(ov.visible(&db, "A", &tuple![2, "9Z"]));
        assert!(!db.contains("A", &tuple![2, "9Z"])); // base untouched
    }

    #[test]
    fn insert_conflict_detected() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(ov
            .apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .is_err());
        assert!(!ov.try_apply(&db, &WriteOp::insert("A", tuple![1, "1A"])));
        // Deleting first clears the way.
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        assert!(ov.try_apply(&db, &WriteOp::insert("A", tuple![1, "1A"])));
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
    }

    #[test]
    fn delete_of_absent_is_noop() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(!ov
            .apply(&db, &WriteOp::delete("A", tuple![9, "XX"]))
            .unwrap());
    }

    #[test]
    fn candidates_merge_base_and_overlay() {
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1C"]))
            .unwrap();
        let bound = vec![Some(Value::from(1)), None];
        let cands = ov
            .candidates(&db, "A", &bound, &mut Default::default())
            .unwrap();
        let seats: Vec<&str> = cands.iter().map(|t| t[1].as_str().unwrap()).collect();
        assert_eq!(seats, vec!["1B", "1C"]);
        assert_eq!(ov.count(&db, "A", &bound).unwrap(), 2);
    }

    #[test]
    fn stream_yields_exactly_the_materialized_sequence() {
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1C"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![2, "2A"]))
            .unwrap();
        for bound in [
            vec![Some(Value::from(1)), None],
            vec![None, None],
            vec![None, Some(Value::from("1C"))],
            vec![Some(Value::from(9)), None],
        ] {
            let rid = db.resolve("A").unwrap();
            let expect = ov
                .candidates(&db, "A", &bound, &mut Default::default())
                .unwrap();
            let mut iter = ov.stream(&db, rid, bound.clone()).unwrap();
            let mut got = Vec::new();
            while let Some(t) = iter.next(&ov) {
                got.push(t);
            }
            assert_eq!(got, expect, "bound={bound:?}");
        }
    }

    #[test]
    fn stream_survives_rolled_back_mutation_between_pulls() {
        // The search mutates the overlay between pulls and rolls back
        // before pulling again; the stream must continue the original
        // sequence.
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::insert("A", tuple![3, "3A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![4, "4A"]))
            .unwrap();
        let rid = db.resolve("A").unwrap();
        let expect = ov
            .candidates(&db, "A", &[None, None], &mut Default::default())
            .unwrap();
        let mut iter = ov.stream(&db, rid, vec![None, None]).unwrap();
        let mut got = Vec::new();
        while let Some(t) = iter.next(&ov) {
            got.push(t.clone());
            // Speculative mutation + rollback, like a deeper search level.
            let mark = ov.mark();
            let _ = ov.try_apply(&db, &WriteOp::delete("A", tuple![4, "4A"]));
            let _ = ov.try_apply(&db, &WriteOp::insert("A", tuple![5, "5A"]));
            ov.rollback(mark);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn count_up_to_id_reports_index_backing() {
        let mut db = base();
        let rid = db.resolve("A").unwrap();
        let bound = vec![Some(Value::from(1)), None];
        let ov = Overlay::new();
        assert_eq!(ov.count_up_to_id(&db, rid, &bound, 10).unwrap(), (2, false));
        db.table_mut("A").unwrap().create_index(0).unwrap();
        assert_eq!(ov.count_up_to_id(&db, rid, &bound, 10).unwrap(), (2, true));
        // Overlay deletes force the streaming slow path.
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        assert_eq!(ov.count_up_to_id(&db, rid, &bound, 10).unwrap(), (1, true));
    }

    #[test]
    fn rollback_restores_exact_state() {
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        let mark = ov.mark();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .unwrap(); // cancels delete
        ov.apply(&db, &WriteOp::insert("A", tuple![3, "3C"]))
            .unwrap();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1B"]))
            .unwrap();
        ov.apply(&db, &WriteOp::delete("A", tuple![3, "3C"]))
            .unwrap(); // cancels insert
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.rollback(mark);
        assert!(!ov.visible(&db, "A", &tuple![1, "1A"]));
        assert!(ov.visible(&db, "A", &tuple![1, "1B"]));
        assert!(!ov.visible(&db, "A", &tuple![3, "3C"]));
        assert_eq!(ov.journal_len(), 1);
    }

    #[test]
    fn commit_into_materializes() {
        let mut db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![7, "7A"]))
            .unwrap();
        ov.commit_into(&mut db).unwrap();
        assert!(!db.contains("A", &tuple![1, "1A"]));
        assert!(db.contains("A", &tuple![7, "7A"]));
    }

    #[test]
    fn insert_after_delete_then_commit() {
        // Regression shape: delete + re-insert of the same tuple must net
        // out to "present" after commit.
        let mut db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .unwrap();
        ov.commit_into(&mut db).unwrap();
        assert!(db.contains("A", &tuple![1, "1A"]));
    }
}
