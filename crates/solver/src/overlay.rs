//! Virtual database states: base database + pending updates.
//!
//! When checking whether transaction `Ti` can ground, its body atoms must be
//! evaluated against the database **as modified by the updates of
//! `T0..Ti-1`** under their chosen groundings (Definition 3.1). `Overlay`
//! provides that view without copying the base: per-relation insert/delete
//! deltas with a journal for cheap backtracking.

use std::collections::{BTreeSet, HashMap};

use qdb_storage::{Database, Tuple, Value, WriteOp};

use crate::error::SolverError;
use crate::Result;

/// One journal entry (how to undo an applied op).
#[derive(Debug, Clone)]
enum Undo {
    /// Remove `tuple` from the insert set of `relation`.
    UnInsert { relation: String, tuple: Tuple },
    /// Remove `tuple` from the delete set of `relation`.
    UnDelete { relation: String, tuple: Tuple },
    /// Re-add `tuple` to the delete set (an insert cancelled the delete).
    ReDelete { relation: String, tuple: Tuple },
    /// Re-add `tuple` to the insert set (a delete cancelled the insert).
    ReInsert { relation: String, tuple: Tuple },
    /// The op was a no-op (delete of an absent tuple).
    Noop,
}

/// A rollback point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayMark(usize);

/// Insert/delete deltas on top of a base [`Database`].
#[derive(Debug, Default, Clone)]
pub struct Overlay {
    inserts: HashMap<String, BTreeSet<Tuple>>,
    deletes: HashMap<String, BTreeSet<Tuple>>,
    journal: Vec<Undo>,
}

impl Overlay {
    /// Empty overlay (view = base).
    pub fn new() -> Self {
        Overlay::default()
    }

    /// Is `tuple` visible in `base + self`?
    pub fn visible(&self, base: &Database, relation: &str, tuple: &Tuple) -> bool {
        if self
            .inserts
            .get(relation)
            .is_some_and(|s| s.contains(tuple))
        {
            return true;
        }
        if self
            .deletes
            .get(relation)
            .is_some_and(|s| s.contains(tuple))
        {
            return false;
        }
        base.contains(relation, tuple)
    }

    /// All visible tuples of `relation` matching the column constraints
    /// `bound` (`Some(v)` pins a column). Base rows come first (in key
    /// order), then overlay inserts (in tuple order) — deterministic.
    pub fn candidates(
        &self,
        base: &Database,
        relation: &str,
        bound: &[Option<Value>],
    ) -> Result<Vec<Tuple>> {
        let table = base.table(relation)?;
        if bound.len() != table.schema().arity() {
            return Err(SolverError::Storage(
                qdb_storage::StorageError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: table.schema().arity(),
                    got: bound.len(),
                },
            ));
        }
        let empty = BTreeSet::new();
        let deleted = self.deletes.get(relation).unwrap_or(&empty);
        let mut out: Vec<Tuple> = table
            .select(bound)
            .filter(|t| !deleted.contains(*t))
            .cloned()
            .collect();
        if let Some(ins) = self.inserts.get(relation) {
            out.extend(
                ins.iter()
                    .filter(|t| {
                        bound
                            .iter()
                            .enumerate()
                            .all(|(i, b)| b.as_ref().is_none_or(|v| &t[i] == v))
                    })
                    .cloned(),
            );
        }
        Ok(out)
    }

    /// Count of visible tuples matching `bound`, saturating at `cap`
    /// (used by the dynamic atom ordering to pick the most constrained
    /// atom first; beyond the cap relative order no longer matters).
    pub fn count_up_to(
        &self,
        base: &Database,
        relation: &str,
        bound: &[Option<Value>],
        cap: usize,
    ) -> Result<usize> {
        let table = base.table(relation)?;
        if bound.len() != table.schema().arity() {
            return Err(SolverError::Storage(
                qdb_storage::StorageError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: table.schema().arity(),
                    got: bound.len(),
                },
            ));
        }
        let empty = BTreeSet::new();
        let deleted = self.deletes.get(relation).unwrap_or(&empty);
        let mut n = table
            .select(bound)
            .filter(|t| !deleted.contains(*t))
            .take(cap)
            .count();
        if n < cap {
            if let Some(ins) = self.inserts.get(relation) {
                n += ins
                    .iter()
                    .filter(|t| {
                        bound
                            .iter()
                            .enumerate()
                            .all(|(i, b)| b.as_ref().is_none_or(|v| &t[i] == v))
                    })
                    .take(cap - n)
                    .count();
            }
        }
        Ok(n)
    }

    /// Exact count of visible tuples matching `bound`.
    pub fn count(&self, base: &Database, relation: &str, bound: &[Option<Value>]) -> Result<usize> {
        self.count_up_to(base, relation, bound, usize::MAX)
    }

    /// Apply a write op on the virtual state.
    ///
    /// * insert of a visible tuple → `Err` — set semantics make the
    ///   grounding that produced this op inconsistent, the caller
    ///   backtracks;
    /// * insert that re-creates a deleted tuple → cancels the delete;
    /// * delete of an overlay-inserted tuple → cancels the insert;
    /// * delete of an absent tuple → journaled no-op (blind deletes are
    ///   silent no-ops in SQL, and the Lemma 3.4 proof never relies on a
    ///   deleted tuple having existed).
    pub fn apply(&mut self, base: &Database, op: &WriteOp) -> Result<bool> {
        match op {
            WriteOp::Insert { relation, tuple } => {
                if self.visible(base, relation, tuple) {
                    return Err(SolverError::CacheInconsistent(format!(
                        "insert of visible tuple {relation}{tuple}"
                    )));
                }
                if self
                    .deletes
                    .get_mut(relation.as_str())
                    .is_some_and(|s| s.remove(tuple))
                {
                    self.journal.push(Undo::ReDelete {
                        relation: relation.clone(),
                        tuple: tuple.clone(),
                    });
                } else {
                    self.inserts
                        .entry(relation.clone())
                        .or_default()
                        .insert(tuple.clone());
                    self.journal.push(Undo::UnInsert {
                        relation: relation.clone(),
                        tuple: tuple.clone(),
                    });
                }
                Ok(true)
            }
            WriteOp::Delete { relation, tuple } => {
                if self
                    .inserts
                    .get_mut(relation.as_str())
                    .is_some_and(|s| s.remove(tuple))
                {
                    self.journal.push(Undo::ReInsert {
                        relation: relation.clone(),
                        tuple: tuple.clone(),
                    });
                    Ok(true)
                } else if base.contains(relation, tuple)
                    && !self
                        .deletes
                        .get(relation.as_str())
                        .is_some_and(|s| s.contains(tuple))
                {
                    self.deletes
                        .entry(relation.clone())
                        .or_default()
                        .insert(tuple.clone());
                    self.journal.push(Undo::UnDelete {
                        relation: relation.clone(),
                        tuple: tuple.clone(),
                    });
                    Ok(true)
                } else {
                    self.journal.push(Undo::Noop);
                    Ok(false)
                }
            }
        }
    }

    /// Apply an op, treating an insert-conflict as a soft failure (`false`)
    /// rather than an error, and rolling nothing back. Used by the search,
    /// which backtracks on `false`.
    pub fn try_apply(&mut self, base: &Database, op: &WriteOp) -> bool {
        match op {
            WriteOp::Insert { relation, tuple } if self.visible(base, relation, tuple) => false,
            _ => {
                // Cannot fail for deletes or non-conflicting inserts.
                self.apply(base, op).expect("conflict pre-checked");
                true
            }
        }
    }

    /// Current rollback point.
    pub fn mark(&self) -> OverlayMark {
        OverlayMark(self.journal.len())
    }

    /// Undo every op applied since `mark`.
    pub fn rollback(&mut self, mark: OverlayMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal non-empty") {
                Undo::UnInsert { relation, tuple } => {
                    self.inserts.get_mut(&relation).map(|s| s.remove(&tuple));
                }
                Undo::UnDelete { relation, tuple } => {
                    self.deletes.get_mut(&relation).map(|s| s.remove(&tuple));
                }
                Undo::ReDelete { relation, tuple } => {
                    self.deletes.entry(relation).or_default().insert(tuple);
                }
                Undo::ReInsert { relation, tuple } => {
                    self.inserts.entry(relation).or_default().insert(tuple);
                }
                Undo::Noop => {}
            }
        }
    }

    /// Number of journaled operations.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Materialize the overlay into the base database (used when grounding
    /// is final rather than speculative). Consumes the overlay.
    pub fn commit_into(self, base: &mut Database) -> Result<()> {
        for (relation, tuples) in &self.deletes {
            for t in tuples {
                base.delete(relation, t)?;
            }
        }
        for (relation, tuples) in &self.inserts {
            for t in tuples {
                base.insert(relation, t.clone())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_storage::{tuple, Schema, ValueType};

    fn base() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "A",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("A", tuple![1, "1A"]).unwrap();
        db.insert("A", tuple![1, "1B"]).unwrap();
        db
    }

    #[test]
    fn visibility_tracks_deltas() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        assert!(!ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.apply(&db, &WriteOp::insert("A", tuple![2, "9Z"]))
            .unwrap();
        assert!(ov.visible(&db, "A", &tuple![2, "9Z"]));
        assert!(!db.contains("A", &tuple![2, "9Z"])); // base untouched
    }

    #[test]
    fn insert_conflict_detected() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(ov
            .apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .is_err());
        assert!(!ov.try_apply(&db, &WriteOp::insert("A", tuple![1, "1A"])));
        // Deleting first clears the way.
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        assert!(ov.try_apply(&db, &WriteOp::insert("A", tuple![1, "1A"])));
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
    }

    #[test]
    fn delete_of_absent_is_noop() {
        let db = base();
        let mut ov = Overlay::new();
        assert!(!ov
            .apply(&db, &WriteOp::delete("A", tuple![9, "XX"]))
            .unwrap());
    }

    #[test]
    fn candidates_merge_base_and_overlay() {
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1C"]))
            .unwrap();
        let bound = vec![Some(Value::from(1)), None];
        let cands = ov.candidates(&db, "A", &bound).unwrap();
        let seats: Vec<&str> = cands.iter().map(|t| t[1].as_str().unwrap()).collect();
        assert_eq!(seats, vec!["1B", "1C"]);
        assert_eq!(ov.count(&db, "A", &bound).unwrap(), 2);
    }

    #[test]
    fn rollback_restores_exact_state() {
        let db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        let mark = ov.mark();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .unwrap(); // cancels delete
        ov.apply(&db, &WriteOp::insert("A", tuple![3, "3C"]))
            .unwrap();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1B"]))
            .unwrap();
        ov.apply(&db, &WriteOp::delete("A", tuple![3, "3C"]))
            .unwrap(); // cancels insert
        assert!(ov.visible(&db, "A", &tuple![1, "1A"]));
        ov.rollback(mark);
        assert!(!ov.visible(&db, "A", &tuple![1, "1A"]));
        assert!(ov.visible(&db, "A", &tuple![1, "1B"]));
        assert!(!ov.visible(&db, "A", &tuple![3, "3C"]));
        assert_eq!(ov.journal_len(), 1);
    }

    #[test]
    fn commit_into_materializes() {
        let mut db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![7, "7A"]))
            .unwrap();
        ov.commit_into(&mut db).unwrap();
        assert!(!db.contains("A", &tuple![1, "1A"]));
        assert!(db.contains("A", &tuple![7, "7A"]));
    }

    #[test]
    fn insert_after_delete_then_commit() {
        // Regression shape: delete + re-insert of the same tuple must net
        // out to "present" after commit.
        let mut db = base();
        let mut ov = Overlay::new();
        ov.apply(&db, &WriteOp::delete("A", tuple![1, "1A"]))
            .unwrap();
        ov.apply(&db, &WriteOp::insert("A", tuple![1, "1A"]))
            .unwrap();
        ov.commit_into(&mut db).unwrap();
        assert!(db.contains("A", &tuple![1, "1A"]));
    }
}
