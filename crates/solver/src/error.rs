//! Solver error type.

use std::fmt;

/// Errors surfaced by the grounding engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// Underlying storage failure (missing table, arity mismatch, …).
    Storage(qdb_storage::StorageError),
    /// Underlying logic failure (unbound variable at grounding time, …).
    Logic(qdb_logic::LogicError),
    /// The search exceeded its node budget. Callers treat this
    /// conservatively (e.g. reject the transaction) — the invariant is
    /// never assumed without a witness.
    LimitExceeded {
        /// Nodes explored before giving up.
        nodes: u64,
    },
    /// A cached solution failed to apply cleanly (internal invariant
    /// violation; indicates engine/cache state divergence).
    CacheInconsistent(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Storage(e) => write!(f, "storage: {e}"),
            SolverError::Logic(e) => write!(f, "logic: {e}"),
            SolverError::LimitExceeded { nodes } => {
                write!(f, "search limit exceeded after {nodes} nodes")
            }
            SolverError::CacheInconsistent(msg) => write!(f, "cache inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<qdb_storage::StorageError> for SolverError {
    fn from(e: qdb_storage::StorageError) -> Self {
        SolverError::Storage(e)
    }
}

impl From<qdb_logic::LogicError> for SolverError {
    fn from(e: qdb_logic::LogicError) -> Self {
        SolverError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SolverError = qdb_storage::StorageError::NoSuchTable("X".into()).into();
        assert!(e.to_string().contains('X'));
        let e: SolverError = qdb_logic::LogicError::UnboundVariable { var: "v".into() }.into();
        assert!(e.to_string().contains('v'));
        assert!(SolverError::LimitExceeded { nodes: 9 }
            .to_string()
            .contains('9'));
    }
}
