//! The consistent-grounding search.
//!
//! Given a base database and an ordered sequence of transaction specs, find
//! one valuation per transaction such that, executing the sequence in
//! order, every spec'd body atom grounds on the then-current virtual state
//! and every update applies without violating set semantics. This is the
//! operational reading of Definition 3.1, and (by Theorem 3.5) equivalent
//! to satisfiability of the composed body formula — the equivalence is
//! cross-checked by property tests against a brute-force formula oracle.
//!
//! The inner loop is allocation-lean and index-driven: relation names are
//! resolved to interned [`RelationId`]s once per solve, candidates are
//! pulled through the streaming [`crate::CandidateIter`] (no per-node
//! `Vec`), and the dynamic atom ordering reads index bucket lengths where
//! an index serves the bound column.

use qdb_logic::{Atom, Term, UpdateKind, Valuation, Var};
use qdb_storage::{Database, RelationId, Tuple, Value, WriteOp};

use crate::error::SolverError;
use crate::overlay::Overlay;
use crate::spec::{Solution, TxnSpec};
use crate::stats::SolverStats;
use crate::Result;

/// Which body atom the search branches on next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomOrder {
    /// Dynamically pick the unmatched atom with the fewest candidates —
    /// the default, analogous to a decent join order.
    #[default]
    MostConstrained,
    /// Left-to-right in body order — mimics the fixed join order of the
    /// paper's monolithic LIMIT-1 queries (kept for the ablation bench;
    /// MySQL's `optimizer_search_depth` troubles in §5.3 are exactly the
    /// cost of getting this ordering wrong).
    Static,
}

/// Search resource bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum candidate tuples tried across one `solve` call.
    pub max_nodes: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 10_000_000,
        }
    }
}

/// The grounding solver. Holds configuration and cumulative statistics;
/// all search state lives on the stack of each call.
#[derive(Debug, Default, Clone)]
pub struct Solver {
    /// Atom ordering strategy.
    pub order: AtomOrder,
    /// Resource bounds.
    pub limits: SearchLimits,
    /// Tie-break seed for [`AtomOrder::MostConstrained`]: when two
    /// unmatched atoms have the same candidate count, `0` (the default)
    /// keeps the first in body order — bit-identical to the historical
    /// behavior — while any other value breaks the tie by a seeded hash.
    /// Every run is deterministic either way; the seed only *selects*
    /// which deterministic exploration order a run gets, so simulation
    /// sweeps can vary search-order decisions per seed and still replay
    /// any run exactly.
    pub seed: u64,
    stats: SolverStats,
    /// Observability handle: when set, `solve_in`, `verify` and
    /// `enumerate_one` record their wall time as
    /// [`qdb_obs::Phase::Solve`].
    obs: Option<std::sync::Arc<qdb_obs::Obs>>,
}

/// One splitmix64 mixing round — the tie-break hash for seeded atom
/// ordering (same finalizer the workload RNG uses).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-spec relation ids, resolved once per solver entry point: one id per
/// [`TxnSpec::atoms`] entry, one `(is_insert, id)` per update atom.
struct ResolvedSpec {
    atom_rids: Vec<RelationId>,
    updates: Vec<(bool, RelationId)>,
}

fn resolve_specs(base: &Database, specs: &[TxnSpec<'_>]) -> Result<Vec<ResolvedSpec>> {
    specs
        .iter()
        .map(|spec| {
            let atom_rids = spec
                .atoms()
                .iter()
                .map(|a| base.resolve(&a.relation).map_err(SolverError::Storage))
                .collect::<Result<Vec<_>>>()?;
            let updates = spec
                .txn
                .updates
                .iter()
                .map(|u| {
                    base.resolve(&u.atom.relation)
                        .map(|rid| (u.kind == UpdateKind::Insert, rid))
                        .map_err(SolverError::Storage)
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(ResolvedSpec { atom_rids, updates })
        })
        .collect()
}

impl Solver {
    /// Solver with the given strategy and default limits.
    pub fn new(order: AtomOrder) -> Self {
        Solver {
            order,
            ..Solver::default()
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Install the observability handle search timings feed into.
    pub fn set_obs(&mut self, obs: Option<std::sync::Arc<qdb_obs::Obs>>) {
        self.obs = obs;
    }

    /// Run `f` and record its wall time as [`qdb_obs::Phase::Solve`].
    fn timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.obs.is_some().then(std::time::Instant::now);
        let r = f(self);
        if let (Some(obs), Some(t0)) = (self.obs.as_ref(), t0) {
            obs.phase(qdb_obs::Phase::Solve, t0.elapsed());
        }
        r
    }

    /// Find a consistent grounding for `specs` executed in order on
    /// `base + pre_ops`. `pre_ops` (the already-fixed updates of a cached
    /// solution) must apply cleanly — a conflict there is an internal
    /// error, not a search failure.
    pub fn solve(
        &mut self,
        base: &Database,
        pre_ops: &[WriteOp],
        specs: &[TxnSpec<'_>],
    ) -> Result<Option<Solution>> {
        let mut overlay = Overlay::new();
        for op in pre_ops {
            overlay.apply(base, op)?;
        }
        self.solve_in(base, &mut overlay, specs)
    }

    /// [`Solver::solve`] against a caller-provided virtual state. On
    /// success the overlay is left with the solution's updates **applied**
    /// (the caller may keep it as the post-admission virtual state); on
    /// an unsatisfiable search it is rolled back to its entry state; after
    /// an error (e.g. the node limit) its contents are unspecified and
    /// must be discarded.
    pub fn solve_in(
        &mut self,
        base: &Database,
        overlay: &mut Overlay,
        specs: &[TxnSpec<'_>],
    ) -> Result<Option<Solution>> {
        self.timed(|s| s.solve_in_inner(base, overlay, specs))
    }

    fn solve_in_inner(
        &mut self,
        base: &Database,
        overlay: &mut Overlay,
        specs: &[TxnSpec<'_>],
    ) -> Result<Option<Solution>> {
        let resolved = resolve_specs(base, specs)?;
        let mut ctx = Ctx {
            base,
            specs,
            resolved: &resolved,
            order: self.order,
            seed: self.seed,
            max_nodes: self.limits.max_nodes,
            nodes: 0,
            stats: &mut self.stats,
            collect_first: None,
        };
        let mut valuations = Vec::with_capacity(specs.len());
        let found = ctx.solve_txn(0, overlay, &mut valuations);
        let nodes = ctx.nodes;
        self.stats.nodes += nodes;
        self.stats.solves += 1;
        match found? {
            true => Ok(Some(Solution { valuations })),
            false => {
                self.stats.unsat += 1;
                Ok(None)
            }
        }
    }

    /// Check that `valuations` is (still) a consistent grounding for
    /// `specs` on `base + pre_ops`. Much cheaper than solving; used to
    /// revalidate cached solutions after reads, writes and reorderings.
    pub fn verify(
        &mut self,
        base: &Database,
        pre_ops: &[WriteOp],
        specs: &[TxnSpec<'_>],
        valuations: &[Valuation],
    ) -> Result<bool> {
        self.timed(|s| s.verify_inner(base, pre_ops, specs, valuations))
    }

    fn verify_inner(
        &mut self,
        base: &Database,
        pre_ops: &[WriteOp],
        specs: &[TxnSpec<'_>],
        valuations: &[Valuation],
    ) -> Result<bool> {
        self.stats.verifies += 1;
        if specs.len() != valuations.len() {
            self.stats.verify_failures += 1;
            return Ok(false);
        }
        let mut overlay = Overlay::new();
        for op in pre_ops {
            overlay.apply(base, op)?;
        }
        let resolved = resolve_specs(base, specs)?;
        for ((spec, val), rspec) in specs.iter().zip(valuations).zip(&resolved) {
            for (atom, &rid) in spec.atoms().iter().zip(&rspec.atom_rids) {
                let tuple = match atom.ground(val) {
                    Ok(t) => t,
                    Err(_) => {
                        self.stats.verify_failures += 1;
                        return Ok(false); // valuation doesn't even cover the atom
                    }
                };
                if !overlay.visible_id(base, rid, &tuple) {
                    self.stats.verify_failures += 1;
                    return Ok(false);
                }
            }
            for (u, &(insert, rid)) in spec.txn.updates.iter().zip(&rspec.updates) {
                let tuple = u.atom.ground(val)?;
                if !overlay.try_apply_id(base, rid, insert, &tuple) {
                    self.stats.verify_failures += 1;
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Enumerate up to `max` distinct groundings of a *single* spec on
    /// `base + pre_ops` (each one's updates must apply cleanly). Used by
    /// grounding heuristics that score alternatives before fixing one.
    pub fn enumerate_one(
        &mut self,
        base: &Database,
        pre_ops: &[WriteOp],
        spec: &TxnSpec<'_>,
        max: usize,
    ) -> Result<Vec<Valuation>> {
        self.timed(|s| s.enumerate_one_inner(base, pre_ops, spec, max))
    }

    fn enumerate_one_inner(
        &mut self,
        base: &Database,
        pre_ops: &[WriteOp],
        spec: &TxnSpec<'_>,
        max: usize,
    ) -> Result<Vec<Valuation>> {
        let mut overlay = Overlay::new();
        for op in pre_ops {
            overlay.apply(base, op)?;
        }
        let specs = std::slice::from_ref(spec);
        let resolved = resolve_specs(base, specs)?;
        let mut collected = Vec::new();
        let mut ctx = Ctx {
            base,
            specs,
            resolved: &resolved,
            order: self.order,
            seed: self.seed,
            max_nodes: self.limits.max_nodes,
            nodes: 0,
            stats: &mut self.stats,
            collect_first: Some((max, &mut collected)),
        };
        let mut valuations = Vec::with_capacity(1);
        // In collect mode solve_txn never reports success; it fills the
        // collector until exhaustion or `max`.
        let res = ctx.solve_txn(0, &mut overlay, &mut valuations);
        let nodes = ctx.nodes;
        self.stats.nodes += nodes;
        res?;
        self.stats.enumerated += collected.len() as u64;
        // Deduplicate while preserving discovery order.
        let mut seen = std::collections::BTreeSet::new();
        collected.retain(|v| seen.insert(v.clone()));
        Ok(collected)
    }
}

struct Ctx<'a, 'c> {
    base: &'a Database,
    specs: &'a [TxnSpec<'a>],
    resolved: &'a [ResolvedSpec],
    order: AtomOrder,
    seed: u64,
    max_nodes: u64,
    /// Nodes expanded by *this* call (the limit is per-call; cumulative
    /// stats absorb it afterwards).
    nodes: u64,
    stats: &'c mut SolverStats,
    /// When set, collect up to N valuations of spec 0 instead of solving
    /// the whole sequence.
    collect_first: Option<(usize, &'c mut Vec<Valuation>)>,
}

impl<'a, 'c> Ctx<'a, 'c> {
    fn solve_txn(
        &mut self,
        i: usize,
        overlay: &mut Overlay,
        out: &mut Vec<Valuation>,
    ) -> Result<bool> {
        if i == self.specs.len() {
            return Ok(self.collect_first.is_none());
        }
        let atoms = self.specs[i].atoms();
        let mut used = vec![false; atoms.len()];
        let mut val = Valuation::new();
        self.solve_atoms(i, &atoms, &mut used, &mut val, overlay, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_atoms(
        &mut self,
        i: usize,
        atoms: &[&Atom],
        used: &mut [bool],
        val: &mut Valuation,
        overlay: &mut Overlay,
        out: &mut Vec<Valuation>,
    ) -> Result<bool> {
        if used.iter().all(|&u| u) {
            return self.complete_txn(i, val, overlay, out);
        }
        let (idx, bound) = self.pick_atom(i, atoms, used, val, overlay)?;
        let atom = atoms[idx];
        let rid = self.resolved[i].atom_rids[idx];
        let mut candidates = overlay.stream(self.base, rid, bound)?;
        if candidates.is_index_backed() {
            self.stats.index_lookups += 1;
        } else {
            self.stats.scan_lookups += 1;
        }
        used[idx] = true;
        while let Some(tuple) = candidates.next(overlay) {
            self.nodes += 1;
            self.stats.candidates_streamed += 1;
            if self.nodes > self.max_nodes {
                return Err(SolverError::LimitExceeded { nodes: self.nodes });
            }
            if let Some(newly) = match_atom(atom, &tuple, val) {
                let done = self.solve_atoms(i, atoms, used, val, overlay, out)?;
                for v in &newly {
                    val.unbind(v);
                }
                if done {
                    used[idx] = false;
                    return Ok(true);
                }
            }
        }
        used[idx] = false;
        Ok(false)
    }

    /// All atoms of txn `i` are matched: apply its updates and move on.
    /// Updates are grounded straight into id-based overlay ops — no
    /// [`WriteOp`] (and no relation-string clone) is materialized.
    fn complete_txn(
        &mut self,
        i: usize,
        val: &mut Valuation,
        overlay: &mut Overlay,
        out: &mut Vec<Valuation>,
    ) -> Result<bool> {
        let mark = overlay.mark();
        let spec = &self.specs[i];
        for (u, &(insert, rid)) in spec.txn.updates.iter().zip(&self.resolved[i].updates) {
            let tuple = u.atom.ground(val)?;
            if !overlay.try_apply_id(self.base, rid, insert, &tuple) {
                overlay.rollback(mark);
                return Ok(false); // set-semantics conflict: backtrack
            }
        }
        if let Some((max, collected)) = &mut self.collect_first {
            collected.push(val.clone());
            let full = collected.len() >= *max;
            overlay.rollback(mark);
            // `true` stops the search; in collect mode that means "quota
            // reached".
            return Ok(full);
        }
        out.push(val.clone());
        if self.solve_txn(i + 1, overlay, out)? {
            return Ok(true);
        }
        out.pop();
        overlay.rollback(mark);
        Ok(false)
    }

    /// Choose the next atom to branch on and return it with its bound
    /// columns (computed once, reused by the candidate stream).
    fn pick_atom(
        &mut self,
        i: usize,
        atoms: &[&Atom],
        used: &[bool],
        val: &Valuation,
        overlay: &Overlay,
    ) -> Result<(usize, Vec<Option<Value>>)> {
        let remaining = used.iter().filter(|&&u| !u).count();
        if remaining == 1 || self.order == AtomOrder::Static {
            let idx = used
                .iter()
                .position(|&u| !u)
                .expect("at least one unused atom");
            return Ok((idx, bound_columns(atoms[idx], val)));
        }
        // Saturating count: beyond 32 candidates the relative order of
        // atoms no longer changes the search usefully.
        const ORDER_CAP: usize = 32;
        let mut best: Option<(usize, usize, Vec<Option<Value>>)> = None;
        for (idx, atom) in atoms.iter().enumerate() {
            if used[idx] {
                continue;
            }
            let bound = bound_columns(atom, val);
            let rid = self.resolved[i].atom_rids[idx];
            let (n, index_backed) = overlay.count_up_to_id(self.base, rid, &bound, ORDER_CAP)?;
            // Classify index vs scan only for bound-column lookups — a
            // fully unbound count is an O(1) length read, neither.
            if bound.iter().any(Option::is_some) {
                if index_backed {
                    self.stats.index_lookups += 1;
                } else {
                    self.stats.scan_lookups += 1;
                }
            }
            // Strictly fewer candidates always wins. On an exact tie the
            // unseeded solver keeps the earlier atom (body order); a
            // non-zero seed instead hashes (seed, atom index) so different
            // seeds deterministically explore different orders.
            let replace = match best.as_ref() {
                None => true,
                Some((bi, bn, _)) => {
                    n < *bn
                        || (n == *bn
                            && self.seed != 0
                            && mix64(self.seed ^ idx as u64) > mix64(self.seed ^ *bi as u64))
                }
            };
            if replace {
                best = Some((idx, n, bound));
            }
            if n == 0 {
                break; // dead branch — pick it and fail fast
            }
        }
        let (idx, _, bound) = best.expect("at least one unused atom");
        Ok((idx, bound))
    }
}

/// Column constraints of `atom` under a partial valuation.
fn bound_columns(atom: &Atom, val: &Valuation) -> Vec<Option<Value>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => val.get(v).cloned(),
        })
        .collect()
}

/// Try to extend `val` so `atom` matches `tuple`; returns newly bound vars
/// (for undo) or `None` on mismatch.
fn match_atom(atom: &Atom, tuple: &Tuple, val: &mut Valuation) -> Option<Vec<Var>> {
    debug_assert_eq!(atom.arity(), tuple.arity());
    let mut newly: Vec<Var> = Vec::new();
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => c == value,
            Term::Var(v) => match val.get(v) {
                Some(existing) => existing == value,
                None => {
                    val.bind(v.clone(), value.clone());
                    newly.push(v.clone());
                    true
                }
            },
        };
        if !ok {
            for v in &newly {
                val.unbind(v);
            }
            return None;
        }
    }
    Some(newly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, ValueType};

    /// One flight (1) with seats 1A..1C available; Goofy already booked 1B
    /// on flight 1. Adjacency 1A-1B, 1B-1C (both directions).
    fn travel_db() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Adjacent",
            vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
        ))
        .unwrap();
        for s in ["1A", "1B", "1C"] {
            db.insert("Available", tuple![1, s]).unwrap();
        }
        db.insert("Bookings", tuple!["Goofy", 1, "1B"]).unwrap();
        for (a, b) in [("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")] {
            db.insert("Adjacent", tuple![a, b]).unwrap();
        }
        db
    }

    fn book(name: &str) -> qdb_logic::ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
        ))
        .unwrap()
    }

    #[test]
    fn single_txn_solves() {
        let db = travel_db();
        let t = book("Mickey");
        let mut solver = Solver::default();
        let sol = solver
            .solve(&db, &[], &[TxnSpec::required_only(&t)])
            .unwrap()
            .unwrap();
        assert_eq!(sol.valuations.len(), 1);
        // The solution grounds the update into valid ops.
        let ops = sol.write_ops(&[&t]).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(solver.stats().solves, 1);
        assert_eq!(solver.stats().unsat, 0);
        // The fast path streams candidates; nothing was materialized.
        assert!(solver.stats().candidates_streamed >= 1);
        assert_eq!(solver.stats().candidate_vecs, 0);
    }

    #[test]
    fn sequence_respects_earlier_deletes() {
        // Three bookings fit (three seats); a fourth cannot.
        let db = travel_db();
        let txns: Vec<_> = ["M", "D", "P", "Q"].iter().map(|n| book(n)).collect();
        let mut solver = Solver::default();
        let specs3: Vec<TxnSpec> = txns[..3].iter().map(TxnSpec::required_only).collect();
        assert!(solver.solve(&db, &[], &specs3).unwrap().is_some());
        let specs4: Vec<TxnSpec> = txns.iter().map(TxnSpec::required_only).collect();
        assert!(solver.solve(&db, &[], &specs4).unwrap().is_none());
        assert_eq!(solver.stats().unsat, 1);
    }

    #[test]
    fn body_can_ground_on_earlier_insert() {
        // T1 books Mickey; T2's body requires a Bookings tuple for Mickey —
        // only satisfiable via T1's pending insert (Lemma 3.4, insert case).
        let db = travel_db();
        let t1 = book("Mickey");
        let t2 = parse_transaction("+Confirmed(s) :-1 Bookings('Mickey', f, s)").unwrap();
        let mut db = db;
        db.create_table(Schema::new("Confirmed", vec![("seat", ValueType::Str)]))
            .unwrap();
        let mut solver = Solver::default();
        let specs = [TxnSpec::required_only(&t1), TxnSpec::required_only(&t2)];
        let sol = solver.solve(&db, &[], &specs).unwrap().unwrap();
        // T2's seat must equal T1's chosen seat.
        let s1 = t1.vars()[1].clone();
        let s2 = t2.vars()[1].clone();
        assert_eq!(sol.valuations[0].get(&s1), sol.valuations[1].get(&s2));
    }

    #[test]
    fn body_cannot_ground_on_earlier_delete() {
        // T1 deletes the ONLY seat (flight fixed, seat fixed); T2 needs it.
        let db = travel_db();
        let t1 = parse_transaction(
            "-Available(f, s), +Bookings('M', f, s) :-1 Available(f, s), Pin(f, s)",
        )
        .unwrap();
        let mut db = db;
        db.create_table(Schema::new(
            "Pin",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("Pin", tuple![1, "1A"]).unwrap(); // forces T1 onto 1A
        let t2 = parse_transaction("+X(f, s) :-1 Available(f, s), Pin(f, s)").unwrap();
        db.create_table(Schema::new(
            "X",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        let mut solver = Solver::default();
        let specs = [TxnSpec::required_only(&t1), TxnSpec::required_only(&t2)];
        assert!(solver.solve(&db, &[], &specs).unwrap().is_none());
        // Reversed order: T2 reads 1A before T1 deletes it — satisfiable.
        let specs = [TxnSpec::required_only(&t2), TxnSpec::required_only(&t1)];
        assert!(solver.solve(&db, &[], &specs).unwrap().is_some());
    }

    #[test]
    fn duplicate_inserts_conflict() {
        // Both transactions want to insert Flag(1) — set semantics forbids.
        let mut db = Database::new();
        db.create_table(Schema::new("A", vec![("x", ValueType::Int)]))
            .unwrap();
        db.create_table(Schema::new("Flag", vec![("x", ValueType::Int)]))
            .unwrap();
        db.insert("A", tuple![1]).unwrap();
        let t = parse_transaction("+Flag(x) :-1 A(x)").unwrap();
        let t2 = t.clone();
        let mut solver = Solver::default();
        let specs = [TxnSpec::required_only(&t), TxnSpec::required_only(&t2)];
        assert!(solver.solve(&db, &[], &specs).unwrap().is_none());
        // With a second A-tuple there is room for both.
        db.insert("A", tuple![2]).unwrap();
        assert!(solver.solve(&db, &[], &specs).unwrap().is_some());
    }

    #[test]
    fn promoted_optionals_constrain() {
        let db = travel_db();
        // Mickey wants a seat adjacent to Goofy's (optional atoms).
        let t = parse_transaction(
            "-Available(f, s), +Bookings('Mickey', f, s) :-1 \
             Available(f, s), Bookings('Goofy', f, s2)?, Adjacent(s, s2)?",
        )
        .unwrap();
        let mut solver = Solver::default();
        let sol = solver
            .solve(&db, &[], &[TxnSpec::with_promoted(&t, vec![1, 2])])
            .unwrap()
            .unwrap();
        let s = t.vars()[1].clone();
        let seat = sol.valuations[0]
            .get(&s)
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(
            seat == "1A" || seat == "1C",
            "must sit next to 1B, got {seat}"
        );
    }

    #[test]
    fn pre_ops_shift_the_base_state() {
        let db = travel_db();
        let t = book("Mickey");
        let pre = vec![
            WriteOp::delete("Available", tuple![1, "1A"]),
            WriteOp::delete("Available", tuple![1, "1B"]),
            WriteOp::delete("Available", tuple![1, "1C"]),
        ];
        let mut solver = Solver::default();
        assert!(solver
            .solve(&db, &pre, &[TxnSpec::required_only(&t)])
            .unwrap()
            .is_none());
    }

    #[test]
    fn verify_accepts_solver_output_and_rejects_tampering() {
        let db = travel_db();
        let t1 = book("Mickey");
        let t2 = book("Donald");
        let specs = [TxnSpec::required_only(&t1), TxnSpec::required_only(&t2)];
        let mut solver = Solver::default();
        let sol = solver.solve(&db, &[], &specs).unwrap().unwrap();
        assert!(solver.verify(&db, &[], &specs, &sol.valuations).unwrap());
        // Tamper: point both transactions at the same seat.
        let mut bad = sol.valuations.clone();
        bad[1] = bad[0].clone();
        // (var ids differ across txns, so translate: rebind t2's vars to
        // t1's values)
        let v1 = &sol.valuations[0];
        let mut forged = Valuation::new();
        for (var, _) in sol.valuations[1].iter() {
            // find same-named var in t1's valuation
            let same = v1.iter().find(|(w, _)| w.name() == var.name()).unwrap();
            forged.bind(var.clone(), same.1.clone());
        }
        bad[1] = forged;
        assert!(!solver.verify(&db, &[], &specs, &bad).unwrap());
        assert_eq!(solver.stats().verify_failures, 1);
        // Wrong length also fails fast.
        assert!(!solver
            .verify(&db, &[], &specs, &sol.valuations[..1])
            .unwrap());
    }

    #[test]
    fn enumerate_lists_all_groundings() {
        let db = travel_db();
        let t = book("Mickey");
        let mut solver = Solver::default();
        let all = solver
            .enumerate_one(&db, &[], &TxnSpec::required_only(&t), 100)
            .unwrap();
        assert_eq!(all.len(), 3, "three available seats");
        let capped = solver
            .enumerate_one(&db, &[], &TxnSpec::required_only(&t), 2)
            .unwrap();
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn node_limit_is_enforced() {
        let db = travel_db();
        let t = book("Mickey");
        let mut solver = Solver::default();
        solver.limits.max_nodes = 1;
        let t2 = book("Donald");
        let specs = [TxnSpec::required_only(&t), TxnSpec::required_only(&t2)];
        assert!(matches!(
            solver.solve(&db, &[], &specs),
            Err(SolverError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn static_and_dynamic_order_agree_on_satisfiability() {
        let db = travel_db();
        let txns: Vec<_> = (0..3).map(|i| book(&format!("U{i}"))).collect();
        let specs: Vec<TxnSpec> = txns.iter().map(TxnSpec::required_only).collect();
        let mut dynamic = Solver::new(AtomOrder::MostConstrained);
        let mut fixed = Solver::new(AtomOrder::Static);
        assert_eq!(
            dynamic.solve(&db, &[], &specs).unwrap().is_some(),
            fixed.solve(&db, &[], &specs).unwrap().is_some()
        );
    }

    #[test]
    fn indexed_base_reports_index_backed_lookups() {
        let mut db = travel_db();
        db.table_mut("Available").unwrap().create_index(0).unwrap();
        // Flight bound by a constant → the stream rides the index.
        let t = parse_transaction("-Available(1, s), +Bookings('M', 1, s) :-1 Available(1, s)")
            .unwrap();
        let mut solver = Solver::default();
        assert!(solver
            .solve(&db, &[], &[TxnSpec::required_only(&t)])
            .unwrap()
            .is_some());
        assert!(solver.stats().index_lookups > 0);
        assert_eq!(solver.stats().candidate_vecs, 0);
    }

    #[test]
    fn seeded_tie_breaks_are_deterministic_and_agree_on_satisfiability() {
        // Two body atoms with equal candidate counts force the dynamic
        // ordering onto its tie-break path on every node.
        let mut db = Database::new();
        db.create_table(Schema::new("A", vec![("x", ValueType::Int)]))
            .unwrap();
        db.create_table(Schema::new("B", vec![("y", ValueType::Int)]))
            .unwrap();
        db.create_table(Schema::new(
            "Out",
            vec![("x", ValueType::Int), ("y", ValueType::Int)],
        ))
        .unwrap();
        for v in [1, 2, 3] {
            db.insert("A", tuple![v]).unwrap();
            db.insert("B", tuple![10 + v]).unwrap();
        }
        let t = parse_transaction("+Out(x, y) :-1 A(x), B(y)").unwrap();
        let spec = TxnSpec::required_only(&t);
        let enumerate = |seed: u64| {
            let mut solver = Solver {
                seed,
                ..Default::default()
            };
            solver.enumerate_one(&db, &[], &spec, 100).unwrap()
        };
        // Any seed is self-consistent, seed 0 included; every seed agrees
        // on the full solution *set* (order may differ).
        for seed in [0, 1, 0xC1DE] {
            assert_eq!(enumerate(seed), enumerate(seed), "seed {seed} replays");
            let mut sorted = enumerate(seed);
            sorted.sort();
            let mut base = enumerate(0);
            base.sort();
            assert_eq!(sorted, base, "seed {seed} finds the same set");
        }
    }

    #[test]
    fn unknown_relation_is_a_storage_error() {
        let db = travel_db();
        let t = parse_transaction("+Ghost(x) :-1 Available(x, s)").unwrap();
        let mut solver = Solver::default();
        let err = solver
            .solve(&db, &[], &[TxnSpec::required_only(&t)])
            .unwrap_err();
        assert!(matches!(
            err,
            SolverError::Storage(qdb_storage::StorageError::NoSuchTable(_))
        ));
    }
}
