//! Solver instrumentation.
//!
//! The evaluation section of the paper is all about *where time goes* as
//! composed bodies grow; these counters are what the bench harness reads.

/// Cumulative counters for one [`crate::Solver`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Search nodes expanded (candidate tuples tried).
    pub nodes: u64,
    /// Completed `solve` calls.
    pub solves: u64,
    /// `solve` calls that found no solution.
    pub unsat: u64,
    /// Completed `verify` calls.
    pub verifies: u64,
    /// `verify` calls that failed.
    pub verify_failures: u64,
    /// Valuations produced by `enumerate` calls.
    pub enumerated: u64,
    /// Candidate rows pulled through streaming cursors (the per-node
    /// enumeration cost; replaces the old per-node `Vec` materialization).
    pub candidates_streamed: u64,
    /// Hot-path lookups (candidate streams and atom-ordering counts)
    /// answered by a secondary index or an index bucket length.
    pub index_lookups: u64,
    /// Hot-path lookups that fell back to a table scan.
    pub scan_lookups: u64,
    /// Candidate vectors materialized (legacy/reference path — the search
    /// fast path keeps this at zero).
    pub candidate_vecs: u64,
}

impl SolverStats {
    /// Reset all counters.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Merge counters from another stats block.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.nodes += other.nodes;
        self.solves += other.solves;
        self.unsat += other.unsat;
        self.verifies += other.verifies;
        self.verify_failures += other.verify_failures;
        self.enumerated += other.enumerated;
        self.candidates_streamed += other.candidates_streamed;
        self.index_lookups += other.index_lookups;
        self.scan_lookups += other.scan_lookups;
        self.candidate_vecs += other.candidate_vecs;
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} solves={} unsat={} verifies={} verify_failures={} enumerated={} \
             candidates_streamed={} lookups(ix/scan)={}/{} candidate_vecs={}",
            self.nodes,
            self.solves,
            self.unsat,
            self.verifies,
            self.verify_failures,
            self.enumerated,
            self.candidates_streamed,
            self.index_lookups,
            self.scan_lookups,
            self.candidate_vecs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = SolverStats {
            nodes: 1,
            solves: 2,
            unsat: 3,
            verifies: 4,
            verify_failures: 5,
            enumerated: 6,
            candidates_streamed: 7,
            index_lookups: 8,
            scan_lookups: 9,
            candidate_vecs: 10,
        };
        a.absorb(&a.clone());
        assert_eq!(a.nodes, 2);
        assert_eq!(a.enumerated, 12);
        assert_eq!(a.candidates_streamed, 14);
        assert_eq!(a.index_lookups, 16);
        assert_eq!(a.scan_lookups, 18);
        assert_eq!(a.candidate_vecs, 20);
        a.reset();
        assert_eq!(a, SolverStats::default());
    }

    #[test]
    fn display_is_one_line() {
        let s = SolverStats::default().to_string();
        assert!(s.contains("nodes=0"));
        assert!(s.contains("candidates_streamed=0"));
        assert!(!s.contains('\n'));
    }
}
