//! Solver instrumentation.
//!
//! The evaluation section of the paper is all about *where time goes* as
//! composed bodies grow; these counters are what the bench harness reads.

/// Cumulative counters for one [`crate::Solver`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Search nodes expanded (candidate tuples tried).
    pub nodes: u64,
    /// Completed `solve` calls.
    pub solves: u64,
    /// `solve` calls that found no solution.
    pub unsat: u64,
    /// Completed `verify` calls.
    pub verifies: u64,
    /// `verify` calls that failed.
    pub verify_failures: u64,
    /// Valuations produced by `enumerate` calls.
    pub enumerated: u64,
}

impl SolverStats {
    /// Reset all counters.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Merge counters from another stats block.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.nodes += other.nodes;
        self.solves += other.solves;
        self.unsat += other.unsat;
        self.verifies += other.verifies;
        self.verify_failures += other.verify_failures;
        self.enumerated += other.enumerated;
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} solves={} unsat={} verifies={} verify_failures={} enumerated={}",
            self.nodes,
            self.solves,
            self.unsat,
            self.verifies,
            self.verify_failures,
            self.enumerated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = SolverStats {
            nodes: 1,
            solves: 2,
            unsat: 3,
            verifies: 4,
            verify_failures: 5,
            enumerated: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.nodes, 2);
        assert_eq!(a.enumerated, 12);
        a.reset();
        assert_eq!(a, SolverStats::default());
    }

    #[test]
    fn display_is_one_line() {
        let s = SolverStats::default().to_string();
        assert!(s.contains("nodes=0"));
        assert!(!s.contains('\n'));
    }
}
