//! Solve requests and solutions.

use qdb_logic::{Atom, ResourceTransaction, Valuation};
use qdb_storage::WriteOp;

use crate::Result;

/// How one transaction participates in a solve: which of its optional atoms
/// are promoted to required for this search.
///
/// The quantum database invariant involves only non-optional atoms (§2);
/// grounding, however, *prefers* assignments that satisfy optional atoms —
/// the engine expresses that preference by retrying with different
/// promotion sets (largest first).
#[derive(Debug, Clone)]
pub struct TxnSpec<'a> {
    /// The transaction.
    pub txn: &'a ResourceTransaction,
    /// Indexes into `txn.body` of **optional** atoms treated as required
    /// for this solve.
    pub promoted: Vec<usize>,
}

impl<'a> TxnSpec<'a> {
    /// Spec with no optional atoms promoted (the invariant check).
    pub fn required_only(txn: &'a ResourceTransaction) -> Self {
        TxnSpec {
            txn,
            promoted: Vec::new(),
        }
    }

    /// Spec with the given optional-atom body indexes promoted.
    pub fn with_promoted(txn: &'a ResourceTransaction, promoted: Vec<usize>) -> Self {
        debug_assert!(promoted.iter().all(|&i| txn.body[i].optional));
        TxnSpec { txn, promoted }
    }

    /// The atoms this spec must ground: all non-optional body atoms plus
    /// the promoted optional ones, in body order.
    pub fn atoms(&self) -> Vec<&Atom> {
        self.txn
            .body
            .iter()
            .enumerate()
            .filter(|(i, b)| !b.optional || self.promoted.contains(i))
            .map(|(_, b)| &b.atom)
            .collect()
    }

    /// Indexes (into `txn.body`) of optional atoms *not* promoted here.
    pub fn unpromoted_optionals(&self) -> Vec<usize> {
        self.txn
            .body
            .iter()
            .enumerate()
            .filter(|(i, b)| b.optional && !self.promoted.contains(i))
            .map(|(i, _)| i)
            .collect()
    }
}

/// A consistent set of groundings for a solved sequence — the witness that
/// the quantum state is non-empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Solution {
    /// One valuation per transaction, in sequence order.
    pub valuations: Vec<Valuation>,
}

impl Solution {
    /// Empty solution (for an empty sequence).
    pub fn empty() -> Self {
        Solution::default()
    }

    /// Ground the update portions of `txns` under this solution, in order.
    /// `txns` must parallel `valuations`.
    pub fn write_ops(&self, txns: &[&ResourceTransaction]) -> Result<Vec<WriteOp>> {
        debug_assert_eq!(txns.len(), self.valuations.len());
        let mut out = Vec::new();
        for (txn, val) in txns.iter().zip(&self.valuations) {
            out.extend(txn.write_ops(val)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;

    #[test]
    fn atoms_respect_promotion() {
        let t = parse_transaction("-A(f, s) :-1 A(f, s), B(G, f, s2)?, Adj(s, s2)?").unwrap();
        let spec = TxnSpec::required_only(&t);
        assert_eq!(spec.atoms().len(), 1);
        assert_eq!(spec.unpromoted_optionals(), vec![1, 2]);
        let spec = TxnSpec::with_promoted(&t, vec![1, 2]);
        assert_eq!(spec.atoms().len(), 3);
        assert!(spec.unpromoted_optionals().is_empty());
        let spec = TxnSpec::with_promoted(&t, vec![2]);
        let atoms = spec.atoms();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[1].relation.as_ref(), "Adj");
        assert_eq!(spec.unpromoted_optionals(), vec![1]);
    }

    #[test]
    fn solution_write_ops_in_sequence_order() {
        let t1 = parse_transaction("-A(x) :-1 A(x)").unwrap();
        let t2 = parse_transaction("+B(y) :-1 A(y)").unwrap();
        // Distinct transactions share var ids here (both x and y are id 0)
        // — fine for this test, each valuation is per-transaction.
        let v1: Valuation = t1
            .vars()
            .into_iter()
            .map(|v| (v, qdb_storage::Value::from(1)))
            .collect();
        let v2: Valuation = t2
            .vars()
            .into_iter()
            .map(|v| (v, qdb_storage::Value::from(2)))
            .collect();
        let sol = Solution {
            valuations: vec![v1, v2],
        };
        let ops = sol.write_ops(&[&t1, &t2]).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].to_string(), "-A(1)");
        assert_eq!(ops[1].to_string(), "+B(2)");
    }
}
