//! # qdb-solver
//!
//! The grounding/satisfiability engine of the quantum database.
//!
//! The paper's prototype (§4) checks the quantum database invariant — *a
//! consistent set of groundings exists for every pending resource
//! transaction* — by issuing one big `LIMIT 1` join query against MySQL per
//! composed transaction body. This crate implements that check natively: a
//! backtracking search over **virtual database states**. Transaction `i`'s
//! body must ground on the state produced by applying transactions
//! `0..i`'s updates to the base database, which is exactly the "consistent
//! grounding" condition of Definition 3.1 and the satisfiability of the
//! composed body of Theorem 3.5 (see `qdb_logic::compose` for the formula
//! view and the cross-validation tests).
//!
//! Key pieces:
//! * [`Overlay`] — copy-on-write view of the base database with the
//!   inserts/deletes of already-grounded prefix transactions applied;
//!   supports marks and rollback for backtracking.
//! * [`Solver`] — the search itself, with two atom-ordering strategies:
//!   [`AtomOrder::MostConstrained`] (dynamic, default) and
//!   [`AtomOrder::Static`] (left-to-right; mimics the cost profile of the
//!   paper's monolithic LIMIT-1 joins and exists for the ablation bench).
//! * [`CachedSolution`] — the §4 *solution cache*: one known-good set of
//!   groundings per partition, extended incrementally when a new
//!   transaction arrives and re-solved from scratch only when extension
//!   fails.

pub mod cache;
pub mod error;
pub mod overlay;
pub mod search;
pub mod spec;
pub mod stats;

pub use cache::CachedSolution;
pub use error::SolverError;
pub use overlay::{CandidateIter, Overlay};
pub use search::{AtomOrder, SearchLimits, Solver};
pub use spec::{Solution, TxnSpec};
pub use stats::SolverStats;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SolverError>;
