//! The solution cache (§4).
//!
//! *"The prototype maintains an in-memory cache of possible solutions (i.e.,
//! value assignments) to the composed transaction bodies. … When a new
//! resource transaction arrives in the system, we check whether an existing
//! solution in the cache can be extended to accommodate the new
//! transaction"* — only if extension fails does the system fall back to a
//! full satisfiability check, and only if *that* fails is the transaction
//! aborted.
//!
//! A [`CachedSolution`] holds one valuation per pending transaction of a
//! partition, in sequence order. The engine may keep several (the paper
//! suggests computing extra solutions in the background to avoid
//! from-scratch re-solves).

use qdb_logic::{ResourceTransaction, Valuation};
use qdb_storage::{Database, WriteOp};

use crate::search::Solver;
use crate::spec::TxnSpec;
use crate::Result;

/// One known-consistent set of groundings for a partition's pending
/// transactions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CachedSolution {
    /// One valuation per pending transaction, parallel to the partition's
    /// pending list.
    pub valuations: Vec<Valuation>,
}

impl CachedSolution {
    /// Cache entry for an empty partition.
    pub fn empty() -> Self {
        CachedSolution::default()
    }

    /// Number of cached groundings.
    pub fn len(&self) -> usize {
        self.valuations.len()
    }

    /// True when no groundings are cached.
    pub fn is_empty(&self) -> bool {
        self.valuations.is_empty()
    }

    /// All write ops of the cached groundings, in sequence order — the
    /// "virtual state" the next transaction would see.
    pub fn pending_ops(&self, txns: &[&ResourceTransaction]) -> Result<Vec<WriteOp>> {
        debug_assert_eq!(txns.len(), self.valuations.len());
        let mut out = Vec::with_capacity(txns.len() * 2);
        for (txn, val) in txns.iter().zip(&self.valuations) {
            out.extend(txn.write_ops(val)?);
        }
        Ok(out)
    }

    /// Try to extend this cached solution with `new_txn` appended to the
    /// sequence: solve only the newcomer against the cached virtual state.
    /// On success the new valuation is appended and `Ok(true)` returned; on
    /// failure the cache is untouched (`Ok(false)`) and the caller should
    /// fall back to [`CachedSolution::resolve`].
    pub fn try_extend(
        &mut self,
        solver: &mut Solver,
        base: &Database,
        txns: &[&ResourceTransaction],
        new_txn: &ResourceTransaction,
    ) -> Result<bool> {
        let pre_ops = self.pending_ops(txns)?;
        match solver.solve(base, &pre_ops, &[TxnSpec::required_only(new_txn)])? {
            Some(sol) => {
                self.valuations
                    .push(sol.valuations.into_iter().next().expect("one spec"));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Solve the whole sequence from scratch.
    pub fn resolve(
        solver: &mut Solver,
        base: &Database,
        txns: &[&ResourceTransaction],
    ) -> Result<Option<CachedSolution>> {
        let specs: Vec<TxnSpec> = txns.iter().map(|t| TxnSpec::required_only(t)).collect();
        Ok(solver.solve(base, &[], &specs)?.map(|sol| CachedSolution {
            valuations: sol.valuations,
        }))
    }

    /// Is this cached solution still consistent with `base`?
    pub fn verify(
        &self,
        solver: &mut Solver,
        base: &Database,
        txns: &[&ResourceTransaction],
    ) -> Result<bool> {
        let specs: Vec<TxnSpec> = txns.iter().map(|t| TxnSpec::required_only(t)).collect();
        solver.verify(base, &[], &specs, &self.valuations)
    }

    /// Drop the grounding at `index` (its transaction left the pending
    /// list). The remaining cached solution stays consistent when the
    /// removed transaction's updates were applied to the base exactly as
    /// cached *and* it was the sequence head; any other removal pattern
    /// must be followed by `verify`/`resolve`.
    pub fn remove(&mut self, index: usize) -> Valuation {
        self.valuations.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, ValueType};

    fn tiny_db(seats: &[&str]) -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        for s in seats {
            db.insert("Available", tuple![1, *s]).unwrap();
        }
        db
    }

    fn book(name: &str) -> ResourceTransaction {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{name}', f, s) :-1 Available(f, s)"
        ))
        .unwrap()
    }

    #[test]
    fn extend_until_capacity_then_fail() {
        let db = tiny_db(&["1A", "1B"]);
        let mut solver = Solver::default();
        let mut cache = CachedSolution::empty();
        let t1 = book("U1");
        let t2 = book("U2");
        let t3 = book("U3");
        let mut admitted: Vec<&ResourceTransaction> = Vec::new();
        assert!(cache.try_extend(&mut solver, &db, &admitted, &t1).unwrap());
        admitted.push(&t1);
        assert!(cache.try_extend(&mut solver, &db, &admitted, &t2).unwrap());
        admitted.push(&t2);
        // Two seats, two bookings: a third cannot extend.
        assert!(!cache.try_extend(&mut solver, &db, &admitted, &t3).unwrap());
        assert_eq!(cache.len(), 2);
        assert!(cache.verify(&mut solver, &db, &admitted).unwrap());
    }

    #[test]
    fn resolve_finds_solution_extension_misses() {
        // Extension can fail while a full re-solve succeeds: the cached
        // grounding for T1 takes the seat T2 needs.
        let mut db = tiny_db(&["1A", "1B"]);
        db.create_table(Schema::new(
            "Pin",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.insert("Pin", tuple![1, "1A"]).unwrap();
        let t1 = book("U1"); // free to take any seat
        let t2 = parse_transaction(
            "-Available(f, s), +Bookings('U2', f, s) :-1 Available(f, s), Pin(f, s)",
        )
        .unwrap(); // must take 1A
        let mut solver = Solver::default();
        let mut cache = CachedSolution::empty();
        let mut admitted: Vec<&ResourceTransaction> = Vec::new();
        assert!(cache.try_extend(&mut solver, &db, &admitted, &t1).unwrap());
        admitted.push(&t1);
        // The solver deterministically gave U1 seat 1A (first candidate).
        // Extension for U2 fails…
        let extended = cache.try_extend(&mut solver, &db, &admitted, &t2).unwrap();
        assert!(!extended);
        // …but the full re-solve reassigns U1 to 1B and fits both.
        admitted.push(&t2);
        let resolved = CachedSolution::resolve(&mut solver, &db, &admitted)
            .unwrap()
            .expect("jointly satisfiable");
        assert_eq!(resolved.len(), 2);
        assert!(resolved.verify(&mut solver, &db, &admitted).unwrap());
    }

    #[test]
    fn verify_fails_after_base_change() {
        let mut db = tiny_db(&["1A"]);
        let t1 = book("U1");
        let mut solver = Solver::default();
        let admitted = [&t1];
        let cache = CachedSolution::resolve(&mut solver, &db, &admitted)
            .unwrap()
            .unwrap();
        assert!(cache.verify(&mut solver, &db, &admitted).unwrap());
        // Someone blind-deletes the seat out from under the cache.
        db.delete("Available", &tuple![1, "1A"]).unwrap();
        assert!(!cache.verify(&mut solver, &db, &admitted).unwrap());
    }

    #[test]
    fn remove_head_keeps_rest_valid() {
        let mut db = tiny_db(&["1A", "1B"]);
        let t1 = book("U1");
        let t2 = book("U2");
        let mut solver = Solver::default();
        let admitted = [&t1, &t2];
        let mut cache = CachedSolution::resolve(&mut solver, &db, &admitted)
            .unwrap()
            .unwrap();
        // Ground T1 exactly as cached: apply its ops to base, drop entry 0.
        let ops = t1.write_ops(&cache.valuations[0]).unwrap();
        db.apply_all(&ops).unwrap();
        cache.remove(0);
        assert!(cache.verify(&mut solver, &db, &[&t2]).unwrap());
    }
}
