//! Run histories in dbcop shape: `(T, so, wr)`.
//!
//! * **T** — the events themselves: CHOOSE submissions, grounds, reads in
//!   all three modes, blind writes, checkpoints and injected crashes.
//! * **so** — session order: events are stored per client session, in the
//!   order that client issued them; the global interleaving the scheduler
//!   actually chose is kept separately as a list of `(session, index)`
//!   sites.
//! * **wr** — writes-read: every collapse read that observed rows for a
//!   user carries the site of the submission that created that user, so
//!   phantom reads (rows with no committed writer) are detectable from
//!   the history alone.
//!
//! Recording is allocation-light — an enum push per statement — so stress
//! runs can keep full histories without distorting the throughput the
//! simulator reports.

use std::fmt;

/// Which of the §3.2.2 read options an event used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// Option 3: ground what the read touches, then answer concretely.
    Collapse,
    /// Option 2: answer from one possible world, grounding nothing.
    Peek,
    /// Option 1: answer with every possible world's result.
    Possible,
}

impl fmt::Display for ReadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadKind::Collapse => write!(f, "READ"),
            ReadKind::Peek => write!(f, "PEEK"),
            ReadKind::Possible => write!(f, "POSSIBLE"),
        }
    }
}

/// The site of an event: `(session, index within session)`.
pub type Site = (usize, usize);

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A CHOOSE submission; `id` is `Some` iff it committed.
    Submit {
        /// Chosen user name.
        user: String,
        /// Flight number.
        flight: i64,
        /// Entangled (§5.1) rather than solo?
        entangled: bool,
        /// Engine-assigned id when committed.
        id: Option<u64>,
    },
    /// Explicit GROUND of one pending transaction.
    Ground {
        /// Target id.
        id: u64,
        /// Was it still pending (and hence collapsed)?
        collapsed: bool,
    },
    /// GROUND ALL.
    GroundAll,
    /// A read; `wr` is the submission site of the observed user's writer
    /// when rows came back (the history's writes-read edge).
    Read {
        /// Read mode.
        kind: ReadKind,
        /// Target user.
        user: String,
        /// How many answers (for POSSIBLE: distinct answer sets).
        answers: usize,
        /// Writer site, when `answers > 0` and the writer is known.
        wr: Option<Site>,
    },
    /// A blind extensional write.
    Write {
        /// Human-readable op description.
        desc: String,
        /// Did admission accept and apply it?
        applied: bool,
    },
    /// CHECKPOINT.
    Checkpoint,
    /// An injected crash: the WAL was cut at `cut` of `wal_len` bytes and
    /// the engine restarted from the prefix.
    Crash {
        /// Cut offset in bytes.
        cut: usize,
        /// WAL image length at the cut.
        wal_len: usize,
        /// Pending transactions that survived the cut.
        survivors: usize,
    },
    /// An op whose positional target had no live population.
    Noop {
        /// Which op degraded.
        op: String,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Submit {
                user,
                flight,
                entangled,
                id,
            } => {
                let kind = if *entangled { "CHOOSE-ENT" } else { "CHOOSE" };
                match id {
                    Some(id) => write!(f, "{kind} {user} flight={flight} -> T{id}"),
                    None => write!(f, "{kind} {user} flight={flight} -> ABORT"),
                }
            }
            Event::Ground { id, collapsed } => {
                write!(
                    f,
                    "GROUND T{id} -> {}",
                    if *collapsed { "collapsed" } else { "gone" }
                )
            }
            Event::GroundAll => write!(f, "GROUND ALL"),
            Event::Read {
                kind,
                user,
                answers,
                wr,
            } => match wr {
                Some((s, i)) => write!(f, "{kind} {user} -> {answers} (wr {s}:{i})"),
                None => write!(f, "{kind} {user} -> {answers}"),
            },
            Event::Write { desc, applied } => {
                write!(
                    f,
                    "WRITE {desc} -> {}",
                    if *applied { "applied" } else { "rejected" }
                )
            }
            Event::Checkpoint => write!(f, "CHECKPOINT"),
            Event::Crash {
                cut,
                wal_len,
                survivors,
            } => write!(f, "CRASH cut={cut}/{wal_len} survivors={survivors}"),
            Event::Noop { op } => write!(f, "NOOP {op}"),
        }
    }
}

/// A full run history: per-session event lists (`so`) plus the global
/// interleaving actually scheduled.
#[derive(Debug, Clone, Default)]
pub struct History {
    sessions: Vec<Vec<Event>>,
    order: Vec<Site>,
}

impl History {
    /// A history for `clients` sessions (session `clients` is reserved
    /// for driver-injected events such as crashes).
    pub fn new(clients: usize) -> Self {
        History {
            sessions: vec![Vec::new(); clients + 1],
            order: Vec::new(),
        }
    }

    /// Record `event` on `session`, returning its site.
    pub fn record(&mut self, session: usize, event: Event) -> Site {
        let site = (session, self.sessions[session].len());
        self.sessions[session].push(event);
        self.order.push(site);
        site
    }

    /// Total recorded events.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// No events yet?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The per-session event lists (session order).
    pub fn sessions(&self) -> &[Vec<Event>] {
        &self.sessions
    }

    /// The globally scheduled interleaving, as sites into [`History::sessions`].
    pub fn order(&self) -> &[Site] {
        &self.order
    }

    /// The event at a site.
    pub fn at(&self, site: Site) -> &Event {
        &self.sessions[site.0][site.1]
    }

    /// The last `n` events of the global order, rendered one per line —
    /// the failing-history slice embedded in failure artifacts.
    pub fn tail_lines(&self, n: usize) -> Vec<String> {
        let start = self.order.len().saturating_sub(n);
        self.order[start..]
            .iter()
            .map(|&(s, i)| format!("{s}:{i} {}", self.sessions[s][i]))
            .collect()
    }

    /// A stable 64-bit digest of the whole history (splitmix-style fold
    /// over the rendered events) — what the determinism tests compare.
    pub fn digest(&self) -> u64 {
        self.fold(|e| format!("{e}"))
    }

    /// [`History::digest`] restricted to the engine-independent
    /// projection of each event: a POSSIBLE read is reduced to its
    /// target, because the set of distinct answer sets (and with it the
    /// writes-read edge) legitimately depends on the engine's
    /// world-enumeration strategy once the world bound truncates. Every
    /// other event — submits, grounds, collapse/peek reads, writes,
    /// crashes — must be bit-identical across `single`, `sharded` and
    /// `wire`; the cross-engine parity test compares this digest.
    pub fn parity_digest(&self) -> u64 {
        self.fold(|e| match e {
            Event::Read {
                kind: ReadKind::Possible,
                user,
                ..
            } => format!("POSSIBLE {user}"),
            other => format!("{other}"),
        })
    }

    fn fold(&self, render: impl Fn(&Event) -> String) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &(s, i) in &self.order {
            let line = format!("{s}:{i}:{}", render(&self.sessions[s][i]));
            for b in line.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_keep_order_and_digest_is_stable() {
        let mut h = History::new(2);
        h.record(0, Event::GroundAll);
        h.record(1, Event::Checkpoint);
        h.record(
            0,
            Event::Read {
                kind: ReadKind::Peek,
                user: "u0".into(),
                answers: 1,
                wr: Some((1, 0)),
            },
        );
        assert_eq!(h.len(), 3);
        assert_eq!(h.sessions()[0].len(), 2);
        assert_eq!(h.order(), &[(0, 0), (1, 0), (0, 1)]);
        assert_eq!(h.tail_lines(2).len(), 2);
        let d1 = h.digest();
        assert_eq!(d1, h.clone().digest());
        h.record(2, Event::GroundAll);
        assert_ne!(d1, h.digest());
    }
}
