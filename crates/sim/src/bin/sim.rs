//! `sim` — deterministic simulation CLI.
//!
//! ```text
//! sim run [--seeds N] [--seed-start S] [--clients N] [--ops N]
//!         [--engine single|sharded|wire|both|all] [--crash on|off]
//!         [--mutate NAME] [--shrink] [--artifact-dir DIR] [--json]
//! sim repl [--seeds N] [--seed-start S] [--replicas N] [--ops N] [--json]
//! sim replay --seed S [--artifact-dir DIR]
//! sim replay <path/to/failure-artifact.json>
//! ```
//!
//! `run` sweeps seeds with the smoke-scale config (overridable per flag)
//! and exits non-zero when any run violates; failure artifacts land in
//! `target/sim/` (with `--shrink`, carrying a delta-debugged minimal
//! trace). `replay` loads an artifact and re-executes its embedded trace
//! under the recorded seed — determinism reproduces the original
//! violation exactly. `repl` sweeps replicated-topology seeds: primary +
//! N WAL-shipping replicas, seeded kill at an arbitrary WAL byte cut,
//! promotion, zero-acked-loss + horizon-explainable-read checking.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use qdb_sim::json::Json;
use qdb_sim::{
    artifact, run_replica_sweep, run_sweep, EngineKind, Mutation, ReplicaSimConfig, RunResult,
    SimConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!(
                "usage: sim run [flags] | sim repl [flags] | sim replay --seed S | \
                 sim replay <artifact>"
            );
            ExitCode::from(2)
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let seeds: u64 = flag(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let start: u64 = flag(args, "--seed-start")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let engines: Vec<EngineKind> = match flag(args, "--engine").as_deref() {
        None | Some("both") => vec![EngineKind::Single, EngineKind::Sharded],
        Some("all") => vec![EngineKind::Single, EngineKind::Sharded, EngineKind::Wire],
        Some(s) => match EngineKind::parse(s) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown engine {s:?} (single|sharded|wire|both|all)");
                return ExitCode::from(2);
            }
        },
    };
    let mut cfg = SimConfig::smoke(engines[0]);
    if let Some(n) = flag(args, "--clients").and_then(|s| s.parse().ok()) {
        cfg.clients = n;
    }
    if let Some(n) = flag(args, "--ops").and_then(|s| s.parse().ok()) {
        cfg.ops_per_client = n;
    }
    match flag(args, "--crash").as_deref() {
        None | Some("on") => cfg.crash = true,
        Some("off") => cfg.crash = false,
        Some(other) => {
            eprintln!("unknown --crash value {other:?} (on|off)");
            return ExitCode::from(2);
        }
    }
    if let Some(name) = flag(args, "--mutate") {
        match Mutation::parse(&name) {
            Some(m) => cfg.mutation = Some(m),
            None => {
                let known: Vec<&str> = Mutation::all().iter().map(|m| m.name()).collect();
                eprintln!("unknown mutation {name:?} ({})", known.join("|"));
                return ExitCode::from(2);
            }
        }
    }
    let shrink = has(args, "--shrink");
    let dir = flag(args, "--artifact-dir").unwrap_or_else(|| "target/sim".into());
    let dir = PathBuf::from(dir);

    let started = Instant::now();
    let outcome = run_sweep(&cfg, start, seeds, &engines, Some(&dir), shrink);
    let elapsed = started.elapsed().as_secs_f64();
    let ops_per_sec = if elapsed > 0.0 {
        outcome.total_ops as f64 / elapsed
    } else {
        0.0
    };

    if has(args, "--json") {
        let failures: Vec<Json> = outcome
            .failures
            .iter()
            .map(|(seed, engine, v, path)| {
                Json::Obj(vec![
                    ("seed".into(), Json::U64(*seed)),
                    ("engine".into(), Json::str(*engine)),
                    ("kind".into(), Json::str(v.kind.clone())),
                    ("op_index".into(), Json::U64(v.op_index)),
                    (
                        "artifact".into(),
                        match path {
                            Some(p) => Json::str(p.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("experiment".into(), Json::str("sim")),
            ("seeds".into(), Json::U64(seeds)),
            ("runs".into(), Json::U64(outcome.runs)),
            ("total_ops".into(), Json::U64(outcome.total_ops)),
            ("ops_per_sec".into(), Json::U64(ops_per_sec as u64)),
            ("commits".into(), Json::U64(outcome.commits)),
            ("aborts".into(), Json::U64(outcome.aborts)),
            ("crashes".into(), Json::U64(outcome.crashes)),
            ("violations".into(), Json::U64(outcome.violations())),
            ("ser_checks".into(), Json::U64(outcome.stats.ser_checks)),
            (
                "explain_checked".into(),
                Json::U64(outcome.stats.explain_checked),
            ),
            (
                "invariant_checks".into(),
                Json::U64(outcome.stats.invariant_checks),
            ),
            ("failures".into(), Json::Arr(failures)),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "sim: {} runs ({} seeds × {} engines), {} ops in {elapsed:.1}s ({ops_per_sec:.0} ops/s)",
            outcome.runs,
            seeds,
            engines.len(),
            outcome.total_ops
        );
        println!(
            "     commits={} aborts={} crashes={} ser_checks={} explain_checked={} \
             explain_skipped={} invariant_checks={}",
            outcome.commits,
            outcome.aborts,
            outcome.crashes,
            outcome.stats.ser_checks,
            outcome.stats.explain_checked,
            outcome.stats.explain_skipped,
            outcome.stats.invariant_checks
        );
        for (seed, engine, v, path) in &outcome.failures {
            println!(
                "     FAILURE seed={seed} engine={engine} kind={} at op {}{}",
                v.kind,
                v.op_index,
                match path {
                    Some(p) => format!(" -> {}", p.display()),
                    None => String::new(),
                }
            );
        }
        if outcome.failures.is_empty() {
            println!("     zero violations");
        }
    }
    if outcome.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_repl(args: &[String]) -> ExitCode {
    let seeds: u64 = flag(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let start: u64 = flag(args, "--seed-start")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut cfg = ReplicaSimConfig::smoke();
    if let Some(n) = flag(args, "--replicas").and_then(|s| s.parse().ok()) {
        cfg.replicas = n;
    }
    if let Some(n) = flag(args, "--ops").and_then(|s| s.parse().ok()) {
        cfg.ops = n;
    }

    let started = Instant::now();
    let out = run_replica_sweep(&cfg, start, seeds);
    let elapsed = started.elapsed().as_secs_f64();

    if has(args, "--json") {
        let failures: Vec<Json> = out
            .failures
            .iter()
            .map(|(seed, v)| {
                Json::Obj(vec![
                    ("seed".into(), Json::U64(*seed)),
                    ("violation".into(), Json::str(v.clone())),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("experiment".into(), Json::str("sim-repl")),
            ("seeds".into(), Json::U64(seeds)),
            ("replicas".into(), Json::U64(cfg.replicas as u64)),
            ("runs".into(), Json::U64(out.runs)),
            ("total_ops".into(), Json::U64(out.total_ops)),
            ("acked_writes".into(), Json::U64(out.acked_writes)),
            ("surviving_acked".into(), Json::U64(out.surviving_acked)),
            ("lost_to_window".into(), Json::U64(out.lost_to_window)),
            ("replica_reads".into(), Json::U64(out.replica_reads)),
            ("checked_reads".into(), Json::U64(out.checked_reads)),
            ("max_lag_bytes".into(), Json::U64(out.max_lag_bytes)),
            ("violations".into(), Json::U64(out.failures.len() as u64)),
            ("failures".into(), Json::Arr(failures)),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "sim repl: {} runs × {} replicas, {} ops in {elapsed:.1}s",
            out.runs, cfg.replicas, out.total_ops
        );
        println!(
            "     acked={} surviving={} async_window={} replica_reads={} checked_reads={} \
             max_lag_bytes={}",
            out.acked_writes,
            out.surviving_acked,
            out.lost_to_window,
            out.replica_reads,
            out.checked_reads,
            out.max_lag_bytes
        );
        for (seed, v) in &out.failures {
            println!("     FAILURE seed={seed}: {v}");
        }
        if out.failures.is_empty() {
            println!("     zero violations");
        }
    }
    if out.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let path: PathBuf = if let Some(seed) = flag(args, "--seed") {
        let dir = flag(args, "--artifact-dir").unwrap_or_else(|| "target/sim".into());
        match find_artifact(Path::new(&dir), &seed) {
            Some(p) => p,
            None => {
                eprintln!("no failure-{seed}-*.json under {dir}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(p) = args.iter().find(|a| !a.starts_with("--")) {
        PathBuf::from(p)
    } else {
        eprintln!("usage: sim replay --seed S | sim replay <artifact>");
        return ExitCode::from(2);
    };
    match artifact::replay_file(&path) {
        Ok(result) => {
            print_replay(&path, &result);
            // Reproducing the violation is the expected outcome.
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn find_artifact(dir: &Path, seed: &str) -> Option<PathBuf> {
    let prefix = format!("failure-{seed}-");
    let mut matches: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
        })
        .collect();
    matches.sort();
    matches.into_iter().next()
}

fn print_replay(path: &Path, result: &RunResult) {
    println!(
        "replayed {} (seed {} engine {}): {} ops, {} crashes",
        path.display(),
        result.seed,
        result.engine,
        result.ops,
        result.crashes
    );
    match &result.violation {
        Some(v) => {
            println!(
                "violation reproduced: {} at op {} — {}",
                v.kind, v.op_index, v.detail
            );
            println!("history tail:");
            for line in result.history.tail_lines(15) {
                println!("  {line}");
            }
        }
        None => println!("no violation on replay (artifact config may have drifted)"),
    }
}
