//! Replicated-topology simulation: a primary engine, N WAL-shipping
//! replicas, and a seeded failover.
//!
//! The run is a pure function of its seed, like [`crate::driver`] runs: a
//! seeded workload executes bookings / blind writes / GROUND ALL /
//! CHECKPOINT against the primary while replicas pull WAL segments of
//! *arbitrary seeded byte lengths* (so frame boundaries are routinely
//! split mid-stream, exercising the applier's tail buffering) and serve
//! PEEK reads at their replication horizon. At a seeded point the primary
//! is killed at an arbitrary WAL byte cut and one replica is promoted.
//!
//! Two properties are black-box checked:
//!
//! 1. **Zero acknowledged-durable-write loss.** The promoted replica's
//!    state must be *byte-for-byte explainable* as crash recovery of the
//!    exact durable WAL prefix it acknowledged: same world fingerprint,
//!    same pending set, same txn horizon. Every write the primary
//!    acknowledged at or below that horizon therefore survives promotion;
//!    acknowledged writes beyond the horizon are counted and reported as
//!    the (expected, bounded) asynchronous-replication window — never
//!    silently dropped.
//! 2. **Horizon-explainable replica reads.** A sampled fraction of
//!    replica PEEK answers are re-derived on a reference engine recovered
//!    from the replica's acknowledged prefix. Equality proves the answer
//!    is the evaluation of a consistent state at the replica's horizon —
//!    the staleness contract `docs/REPLICATION.md` documents.

use qdb_core::{world_fingerprint, QuantumDb, QuantumDbConfig, ReplicaApplier, Response};
use qdb_storage::wal::MemorySink;
use qdb_storage::{LogSink, Wal};
use qdb_workload::flights::{self, FlightsConfig};
use qdb_workload::rng::StdRng;

/// Shape of one replicated-topology run.
#[derive(Debug, Clone)]
pub struct ReplicaSimConfig {
    /// Statements the workload executes against the primary.
    pub ops: usize,
    /// Replicas following the primary.
    pub replicas: usize,
    /// Flight database shape.
    pub flights: FlightsConfig,
    /// Engine `k` bound.
    pub k: usize,
    /// Maximum bytes per replication poll (actual chunk sizes are seeded
    /// in `1..=segment_max`, deliberately cutting frames mid-stream).
    pub segment_max: usize,
    /// Verify every n-th replica read against a reference recovery
    /// (`0` = never).
    pub read_sample: u64,
}

impl ReplicaSimConfig {
    /// CI smoke scale: 2 replicas following a 3-flight primary under a
    /// tight `k`, tiny segments.
    pub fn smoke() -> ReplicaSimConfig {
        ReplicaSimConfig {
            ops: 250,
            replicas: 2,
            flights: FlightsConfig {
                flights: 3,
                rows_per_flight: 6,
            },
            k: 5,
            segment_max: 512,
            read_sample: 4,
        }
    }
}

/// Outcome of one replicated run.
#[derive(Debug, Clone)]
pub struct ReplicaRunResult {
    /// The seed.
    pub seed: u64,
    /// Primary statements executed.
    pub ops: u64,
    /// Writes the primary acknowledged (durable in its WAL image).
    pub acked_writes: u64,
    /// Acknowledged writes at or below the promoted replica's horizon —
    /// proven to survive failover.
    pub surviving_acked: u64,
    /// Acknowledged writes beyond the horizon at the kill point (the
    /// asynchronous-replication window; expected, reported, bounded).
    pub lost_to_window: u64,
    /// PEEK reads served by replicas during the run.
    pub replica_reads: u64,
    /// Replica reads verified against a reference recovery.
    pub checked_reads: u64,
    /// Largest observed replica lag in bytes during the run.
    pub max_lag_bytes: u64,
    /// WAL byte offset the promoted replica had acknowledged.
    pub promoted_offset: u64,
    /// Txn-id horizon of the promoted replica.
    pub promoted_horizon: u64,
    /// Writes executed successfully on the promoted node (liveness).
    pub post_promotion_writes: u64,
    /// First property violation, if any.
    pub violation: Option<String>,
}

impl ReplicaRunResult {
    fn fail(mut self, detail: String) -> ReplicaRunResult {
        self.violation = Some(detail);
        self
    }
}

fn qcfg(cfg: &ReplicaSimConfig, seed: u64) -> QuantumDbConfig {
    QuantumDbConfig {
        k: cfg.k,
        seed,
        ..QuantumDbConfig::default()
    }
}

/// Crash-recover a reference engine from the exact durable prefix a
/// replica acknowledged. This is the *explanation object* for both
/// checked properties: a state every honest node would reach from those
/// bytes.
fn recover_prefix(prefix: &[u8], qcfg: QuantumDbConfig) -> Result<QuantumDb, String> {
    let sink: Box<dyn LogSink> = Box::new(MemorySink::from_bytes(prefix.to_vec()));
    QuantumDb::recover(Wal::with_sink(sink), qcfg).map_err(|e| e.to_string())
}

fn booking_sql(user: &str, flight: i64) -> String {
    format!(
        "SELECT @s FROM Available({flight}, @s) CHOOSE 1 FOLLOWED BY \
         (DELETE ({flight}, @s) FROM Available; \
         INSERT ('{user}', {flight}, @s) INTO Bookings)"
    )
}

/// Durable WAL image length — what a crash (and therefore a replica)
/// can observe; the group-commit tail buffer is deliberately excluded.
fn durable_len(db: &mut QuantumDb) -> u64 {
    db.wal_image().len() as u64
}

/// Compare a replica-visible answer with the reference recovery's answer
/// for the same statement. `Err` carries the mismatch description.
fn check_against_reference(
    replica: &mut QuantumDb,
    reference: &mut QuantumDb,
    sql: &str,
    what: &str,
) -> Result<(), String> {
    let got = replica.execute(sql).map_err(|e| e.to_string())?;
    let want = reference.execute(sql).map_err(|e| e.to_string())?;
    if got != want {
        return Err(format!(
            "{what}: replica answered {got:?} but the horizon state answers {want:?} for {sql:?}"
        ));
    }
    Ok(())
}

/// Execute one seeded replicated-topology run.
pub fn run_replica_seed(seed: u64, cfg: &ReplicaSimConfig) -> ReplicaRunResult {
    let mut out = ReplicaRunResult {
        seed,
        ops: 0,
        acked_writes: 0,
        surviving_acked: 0,
        lost_to_window: 0,
        replica_reads: 0,
        checked_reads: 0,
        max_lag_bytes: 0,
        promoted_offset: 0,
        promoted_horizon: 0,
        post_promotion_writes: 0,
        violation: None,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e11_ca5e_u64.rotate_left(17));

    let mut primary = match QuantumDb::new(qcfg(cfg, seed)) {
        Ok(db) => db,
        Err(e) => return out.fail(format!("primary build: {e}")),
    };
    if let Err(e) = flights::install(&mut primary, &cfg.flights) {
        return out.fail(format!("flights install: {e}"));
    }

    // Replicas start from an empty engine and replay everything — schema
    // install included — from the primary's WAL, exactly like a fresh
    // `qdb-server --replicate-from` node.
    let mut replicas: Vec<ReplicaApplier> = Vec::with_capacity(cfg.replicas.max(1));
    for _ in 0..cfg.replicas.max(1) {
        match QuantumDb::new(qcfg(cfg, seed)) {
            Ok(db) => replicas.push(ReplicaApplier::new(db)),
            Err(e) => return out.fail(format!("replica build: {e}")),
        }
    }

    // Acknowledged durable writes: (durable WAL offset right after the
    // ack, description) — the unit of the zero-loss property.
    let mut acked: Vec<(u64, String)> = Vec::new();
    let flights_n = cfg.flights.flights.max(1) as i64;

    for i in 0..cfg.ops {
        out.ops += 1;
        let roll = rng.gen_range(0..100);
        let flight = rng.gen_range(0..flights_n as usize) as i64 + 1;
        if roll < 40 {
            // CHOOSE booking — the paper's workload backbone.
            let user = format!("u{i}");
            match primary.execute(&booking_sql(&user, flight)) {
                Ok(Response::Committed(_)) => {
                    acked.push((durable_len(&mut primary), format!("booking {user}")));
                }
                Ok(_) => {}
                Err(_) => {} // sold out / k-bound aborts are workload noise
            }
        } else if roll < 55 {
            let sql = format!("INSERT INTO Bookings VALUES ('w{i}', {flight}, 'W{i}')");
            if matches!(primary.execute(&sql), Ok(Response::Written(true))) {
                acked.push((durable_len(&mut primary), format!("insert w{i}")));
            }
        } else if roll < 62 {
            if primary.execute("GROUND ALL").is_ok() {
                acked.push((durable_len(&mut primary), "ground all".into()));
            }
        } else if roll < 67 {
            if primary.execute("CHECKPOINT").is_ok() {
                acked.push((durable_len(&mut primary), "checkpoint".into()));
            }
        } else if roll < 90 {
            // Replication poll: a seeded replica pulls a seeded, usually
            // frame-splitting number of bytes.
            let r = rng.gen_range(0..replicas.len());
            let chunk = rng.gen_range(0..cfg.segment_max.max(1)) + 1;
            let from = replicas[r].fetch_offset();
            let (wal_len, _, bytes) = primary.wal_stream_from(from, chunk);
            if !bytes.is_empty() {
                if let Err(e) = replicas[r].apply_segment(from, &bytes) {
                    return out.fail(format!("replica {r} apply at {from}: {e}"));
                }
            }
            let lag = wal_len.saturating_sub(replicas[r].applied_offset());
            out.max_lag_bytes = out.max_lag_bytes.max(lag);
        } else {
            // Replica PEEK at its horizon.
            let r = rng.gen_range(0..replicas.len());
            if replicas[r].applied_offset() == 0 {
                continue; // schema not replicated yet — nothing to read
            }
            out.replica_reads += 1;
            let sql = format!("SELECT PEEK * FROM Available({flight}, @s)");
            let sampled = cfg.read_sample > 0 && out.replica_reads.is_multiple_of(cfg.read_sample);
            if sampled {
                let applied = replicas[r].applied_offset() as usize;
                let image = primary.wal_image();
                let mut reference = match recover_prefix(&image[..applied], qcfg(cfg, seed)) {
                    Ok(db) => db,
                    Err(e) => return out.fail(format!("reference recovery at {applied}: {e}")),
                };
                out.checked_reads += 1;
                for (stmt, what) in [
                    (sql.as_str(), "peek_unexplainable"),
                    ("SHOW PENDING", "pending_mismatch"),
                ] {
                    if let Err(e) =
                        check_against_reference(replicas[r].db_mut(), &mut reference, stmt, what)
                    {
                        return out.fail(format!("replica {r} at offset {applied}: {e}"));
                    }
                }
                let got = world_fingerprint(replicas[r].db().database());
                let want = world_fingerprint(reference.database());
                if got != want {
                    return out.fail(format!(
                        "replica {r} ground state diverged from its horizon at offset {applied}"
                    ));
                }
            } else if let Err(e) = replicas[r].db_mut().execute(&sql) {
                return out.fail(format!("replica {r} peek: {e}"));
            }
        }
    }

    // ---- Kill the primary at an arbitrary WAL byte cut -------------------
    let image = primary.wal_image();
    out.acked_writes = acked.len() as u64;
    let victim_idx = rng.gen_range(0..replicas.len());
    let victim = replicas.swap_remove(victim_idx);
    let mut victim = victim;
    // One last partial delivery: the stream dies mid-flight at a seeded
    // byte cut anywhere between the victim's cursor and the end of the
    // log — almost always inside a frame.
    let fetch = victim.fetch_offset() as usize;
    if fetch < image.len() {
        let cut = fetch + rng.gen_range(0..image.len() - fetch + 1);
        if cut > fetch {
            if let Err(e) = victim.apply_segment(fetch as u64, &image[fetch..cut]) {
                return out.fail(format!("final segment apply: {e}"));
            }
        }
    }
    let applied = victim.applied_offset();
    let horizon = victim.horizon();
    out.promoted_offset = applied;
    out.promoted_horizon = horizon;
    out.surviving_acked = acked.iter().filter(|(off, _)| *off <= applied).count() as u64;
    out.lost_to_window = out.acked_writes - out.surviving_acked;

    let mut promoted = match victim.promote() {
        Ok(db) => db,
        Err(e) => return out.fail(format!("promotion: {e}")),
    };

    // Property 1 — zero acknowledged-durable-write loss: the promoted
    // state IS crash recovery of the acknowledged prefix, so every write
    // acked at or below the horizon is present by construction.
    let mut reference = match recover_prefix(&image[..applied as usize], qcfg(cfg, seed)) {
        Ok(db) => db,
        Err(e) => return out.fail(format!("post-kill reference recovery: {e}")),
    };
    let got = world_fingerprint(promoted.database());
    let want = world_fingerprint(reference.database());
    if got != want {
        let at_risk = out.surviving_acked;
        return out.fail(format!(
            "acked_write_loss: promoted state at offset {applied} diverged from recovery \
             of the acknowledged prefix ({at_risk} acked writes at risk)"
        ));
    }
    if let Err(e) = check_against_reference(
        &mut promoted,
        &mut reference,
        "SHOW PENDING",
        "pending_mismatch",
    ) {
        return out.fail(format!("promoted pending set: {e}"));
    }
    if promoted.last_txn_id() != reference.last_txn_id() {
        return out.fail(format!(
            "promoted txn horizon {} != recovered horizon {}",
            promoted.last_txn_id(),
            reference.last_txn_id()
        ));
    }

    // Liveness: the promoted node accepts writes (it is a primary now).
    for j in 0..3 {
        let flight = rng.gen_range(0..flights_n as usize) as i64 + 1;
        let sql = format!("INSERT INTO Bookings VALUES ('p{j}', {flight}, 'P{j}')");
        match promoted.execute(&sql) {
            Ok(Response::Written(true)) => out.post_promotion_writes += 1,
            other => return out.fail(format!("post-promotion write {j}: {other:?}")),
        }
    }
    out
}

/// Aggregate of a replicated-topology seed sweep.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSweepOutcome {
    /// Runs executed.
    pub runs: u64,
    /// Primary statements across all runs.
    pub total_ops: u64,
    /// Acknowledged durable writes across all runs.
    pub acked_writes: u64,
    /// Acked writes proven to survive failover.
    pub surviving_acked: u64,
    /// Acked writes lost to the async window (reported, expected).
    pub lost_to_window: u64,
    /// Replica reads served.
    pub replica_reads: u64,
    /// Replica reads verified against a reference recovery.
    pub checked_reads: u64,
    /// Largest lag observed in any run.
    pub max_lag_bytes: u64,
    /// Failing runs: `(seed, violation)`.
    pub failures: Vec<(u64, String)>,
}

/// Sweep `seeds` consecutive replicated-topology seeds.
pub fn run_replica_sweep(
    cfg: &ReplicaSimConfig,
    start_seed: u64,
    seeds: u64,
) -> ReplicaSweepOutcome {
    let mut out = ReplicaSweepOutcome::default();
    for seed in start_seed..start_seed + seeds {
        let r = run_replica_seed(seed, cfg);
        out.runs += 1;
        out.total_ops += r.ops;
        out.acked_writes += r.acked_writes;
        out.surviving_acked += r.surviving_acked;
        out.lost_to_window += r.lost_to_window;
        out.replica_reads += r.replica_reads;
        out.checked_reads += r.checked_reads;
        out.max_lag_bytes = out.max_lag_bytes.max(r.max_lag_bytes);
        if let Some(v) = r.violation {
            out.failures.push((seed, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_smoke_sweep_is_clean() {
        let out = run_replica_sweep(&ReplicaSimConfig::smoke(), 1, 3);
        assert!(out.failures.is_empty(), "violations: {:?}", out.failures);
        assert!(out.acked_writes > 0, "workload must acknowledge writes");
        assert!(out.replica_reads > 0, "replicas must serve reads");
        assert!(out.checked_reads > 0, "sampling must verify some reads");
        assert!(
            out.surviving_acked > 0,
            "some acked writes must be inside the horizon"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ReplicaSimConfig::smoke();
        let a = run_replica_seed(7, &cfg);
        let b = run_replica_seed(7, &cfg);
        assert_eq!(a.acked_writes, b.acked_writes);
        assert_eq!(a.promoted_offset, b.promoted_offset);
        assert_eq!(a.promoted_horizon, b.promoted_horizon);
        assert_eq!(a.surviving_acked, b.surviving_acked);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn promoted_replica_explains_every_surviving_write() {
        // A focused single-seed look: lost writes are exactly the acked
        // tail beyond the promoted offset — never an interior gap.
        let r = run_replica_seed(11, &ReplicaSimConfig::smoke());
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert_eq!(r.acked_writes, r.surviving_acked + r.lost_to_window);
        assert_eq!(r.post_promotion_writes, 3);
    }
}
