//! Delta-debugging shrinker for violating schedules.
//!
//! A failing seed's recorded trace is typically hundreds of entries of
//! which a handful matter. [`shrink`] reduces it to a locally-minimal
//! repro by re-executing candidate sub-traces through the driver's
//! trace-replay mode ([`crate::driver::run_trace`]) and keeping any
//! candidate that still produces a violation of the same *kind*:
//!
//! 1. **Drop whole clients** — remove every op one logical client
//!    issued; a race usually needs two or three participants.
//! 2. **ddmin** — remove contiguous chunks, halving the chunk size down
//!    to single entries, repeated to a fixpoint.
//!
//! Crash entries carry their WAL cut and injected fault inline, so a
//! sub-trace replays the *same* crash against whatever (shorter) log the
//! surviving ops produced — the oracle is exact, not probabilistic, and
//! the whole procedure is deterministic: no randomness, candidate order
//! fixed by construction.

use crate::checker::Violation;
use crate::driver::{run_trace, SimConfig, TraceEntry};

/// Result of a shrink pass.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The locally-minimal trace (the input trace if nothing could go).
    pub trace: Vec<TraceEntry>,
    /// Length of the input trace.
    pub original_len: usize,
    /// Driver re-executions spent.
    pub runs: usize,
    /// The violation the minimal trace produces — `None` only when the
    /// input trace itself did not reproduce (then `trace` is the input,
    /// untouched).
    pub violation: Option<Violation>,
}

impl ShrinkOutcome {
    /// Did the input reproduce at all (and hence shrinking apply)?
    pub fn reproduced(&self) -> bool {
        self.violation.is_some()
    }
}

struct Oracle<'a> {
    seed: u64,
    cfg: &'a SimConfig,
    kind: &'a str,
    runs: usize,
    max_runs: usize,
}

impl Oracle<'_> {
    /// Does `candidate` still produce a violation of the target kind?
    /// Returns the violation so the caller can report the minimal one.
    fn check(&mut self, candidate: &[TraceEntry]) -> Option<Violation> {
        if self.runs >= self.max_runs {
            return None;
        }
        self.runs += 1;
        run_trace(self.seed, self.cfg, candidate)
            .violation
            .filter(|v| v.kind == self.kind)
    }
}

/// Shrink `trace` (recorded under `seed`/`cfg`, violating with kind
/// `kind`) to a locally-minimal reproducing sub-trace, spending at most
/// `max_runs` re-executions. A trace that does not reproduce — e.g. from
/// a passing seed — comes back unchanged with `violation: None`.
pub fn shrink(
    seed: u64,
    cfg: &SimConfig,
    trace: &[TraceEntry],
    kind: &str,
    max_runs: usize,
) -> ShrinkOutcome {
    let mut oracle = Oracle {
        seed,
        cfg,
        kind,
        runs: 0,
        max_runs,
    };
    let mut best: Vec<TraceEntry> = trace.to_vec();
    let Some(mut violation) = oracle.check(&best) else {
        return ShrinkOutcome {
            trace: best,
            original_len: trace.len(),
            runs: oracle.runs,
            violation: None,
        };
    };

    // Phase 1: drop whole clients, highest first so renumbering never
    // matters (client ids are positions in the config, not the trace).
    let mut clients: Vec<usize> = best
        .iter()
        .filter_map(|e| match e {
            TraceEntry::Op { client, .. } => Some(*client),
            TraceEntry::Crash { .. } => None,
        })
        .collect();
    clients.sort_unstable();
    clients.dedup();
    for c in clients.into_iter().rev() {
        let candidate: Vec<TraceEntry> = best
            .iter()
            .filter(|e| !matches!(e, TraceEntry::Op { client, .. } if *client == c))
            .cloned()
            .collect();
        if candidate.len() < best.len() {
            if let Some(v) = oracle.check(&candidate) {
                best = candidate;
                violation = v;
            }
        }
    }

    // Phase 2: ddmin over entries — remove contiguous chunks, halving
    // the chunk size, to a fixpoint.
    let mut improved = true;
    while improved {
        improved = false;
        let mut chunk = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.len() && best.len() > 1 {
                let end = (start + chunk).min(best.len());
                let mut candidate = best.clone();
                candidate.drain(start..end);
                match oracle.check(&candidate) {
                    Some(v) if !candidate.is_empty() => {
                        best = candidate;
                        violation = v;
                        improved = true;
                        // The next chunk now occupies `start` — retry it.
                    }
                    _ => start = end,
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    ShrinkOutcome {
        trace: best,
        original_len: trace.len(),
        runs: oracle.runs,
        violation: Some(violation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_seed, EngineKind, Mutation, SimConfig};

    fn tiny(mutation: Option<Mutation>) -> SimConfig {
        SimConfig {
            clients: 3,
            ops_per_client: 60,
            crash_count: 1,
            ser_interval: 40,
            mutation,
            ..SimConfig::smoke(EngineKind::Single)
        }
    }

    /// First seed in `1..=20` whose run violates, with its result.
    fn violating_run(cfg: &SimConfig) -> (u64, crate::driver::RunResult) {
        (1..=20)
            .map(|seed| (seed, run_seed(seed, cfg)))
            .find(|(_, r)| r.violation.is_some())
            .expect("a mutation-armed run must violate within 20 seeds")
    }

    #[test]
    fn shrunk_trace_reproduces_the_same_violation_class() {
        let cfg = tiny(Some(Mutation::CorruptWalByte));
        let (seed, r) = violating_run(&cfg);
        let kind = r.violation.as_ref().unwrap().kind.clone();
        let out = shrink(seed, &cfg, &r.trace, &kind, 400);
        assert!(out.reproduced());
        assert!(out.trace.len() <= r.trace.len());
        let replay = run_trace(seed, &cfg, &out.trace);
        assert_eq!(replay.violation.expect("minimal trace violates").kind, kind);
    }

    #[test]
    fn shrinking_a_passing_seed_is_a_noop() {
        let cfg = tiny(None);
        let r = run_seed(3, &cfg);
        assert!(r.violation.is_none(), "seed 3 must pass: {:?}", r.violation);
        let out = shrink(3, &cfg, &r.trace, "conservation", 400);
        assert!(!out.reproduced());
        assert_eq!(out.trace, r.trace, "passing trace must come back intact");
        assert_eq!(out.runs, 1, "one oracle call decides a passing trace");
    }

    #[test]
    fn shrink_is_deterministic() {
        let cfg = tiny(Some(Mutation::DropGroupFlush));
        let (seed, r) = violating_run(&cfg);
        let kind = r.violation.as_ref().unwrap().kind.clone();
        let a = shrink(seed, &cfg, &r.trace, &kind, 400);
        let b = shrink(seed, &cfg, &r.trace, &kind, 400);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.runs, b.runs);
    }

    /// Acceptance pin: a mutation-induced failure shrinks by ≥10×. The
    /// seed is fixed so the ratio is a regression gate, not a lottery
    /// (seed 2 here shrinks ~350 entries to a single-digit repro).
    #[test]
    fn pinned_mutation_failure_shrinks_ten_fold() {
        let cfg = SimConfig {
            ops_per_client: 120,
            ..tiny(Some(Mutation::CorruptWalByte))
        };
        let seed = 2;
        let r = run_seed(seed, &cfg);
        let v = r.violation.as_ref().expect("pinned seed must violate");
        assert_eq!(v.kind, "recovery_divergence");
        let out = shrink(seed, &cfg, &r.trace, &v.kind, 600);
        assert!(out.reproduced());
        assert!(
            out.trace.len() * 10 <= out.original_len,
            "shrink only reached {} of {} entries",
            out.trace.len(),
            out.original_len
        );
    }
}
