//! Failure repro artifacts.
//!
//! When a checker violation fires, the sweep writes everything needed to
//! reproduce it to `target/sim/failure-<seed>-<engine>.json`: the seed,
//! the full [`SimConfig`] scalars, the violation, the executed op trace
//! (shrunk to a locally-minimal repro when the sweep ran with
//! `--shrink`), the failing slice of the history, and the engine's last
//! flight-recorder events (span timings around the failure — diagnostic
//! context only). `sim replay` loads the artifact, rebuilds the config,
//! and re-executes the embedded trace under the recorded seed —
//! determinism guarantees the same violation; the loader ignores the
//! event timings (wall-clock, not reproducible).

use std::fs;
use std::path::{Path, PathBuf};

use qdb_workload::FlightsConfig;

use crate::driver::{run_seed, run_trace, EngineKind, Mutation, RunResult, SimConfig, TraceEntry};
use crate::json::{flat_bool, flat_str, flat_str_arr, flat_u64, Json};

/// How many trailing history events an artifact embeds (also the number
/// of flight-recorder span events drained from the engine).
pub const TAIL_EVENTS: usize = 40;

/// Artifact schema tag (bump on incompatible layout changes).
/// v2 added `obs_events` (flight-recorder tail); v3 added the inline op
/// trace (`trace`, `trace_len`, `original_trace_len`, `shrunk`) that
/// replay executes directly.
pub const SCHEMA: &str = "qdb-sim-failure-v3";

/// Render a failure artifact document for a run that ended in a
/// violation. `shrunk_from` is the raw trace length when `result` is the
/// re-execution of a shrunk trace.
pub fn render(result: &RunResult, cfg: &SimConfig, shrunk_from: Option<usize>) -> String {
    let v = result
        .violation
        .as_ref()
        .expect("artifacts are only rendered for failing runs");
    let tail: Vec<Json> = result
        .history
        .tail_lines(TAIL_EVENTS)
        .into_iter()
        .map(Json::Str)
        .collect();
    let obs: Vec<Json> = result
        .obs_events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("ts_ns".into(), Json::U64(e.ts_ns)),
                ("txn".into(), Json::U64(e.txn_id)),
                ("partition".into(), Json::U64(e.partition_id)),
                ("kind".into(), Json::str(e.kind_name())),
                (
                    "outcome".into(),
                    Json::str(match e.outcome {
                        qdb_core::Outcome::Ok => "ok",
                        qdb_core::Outcome::Aborted => "aborted",
                        qdb_core::Outcome::Error => "error",
                    }),
                ),
                ("dur_ns".into(), Json::U64(e.dur_ns)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA)),
        ("seed".into(), Json::U64(result.seed)),
        ("engine".into(), Json::str(result.engine)),
        ("clients".into(), Json::U64(cfg.clients as u64)),
        (
            "ops_per_client".into(),
            Json::U64(cfg.ops_per_client as u64),
        ),
        ("flights".into(), Json::U64(cfg.flights.flights as u64)),
        (
            "rows_per_flight".into(),
            Json::U64(cfg.flights.rows_per_flight as u64),
        ),
        ("k".into(), Json::U64(cfg.k as u64)),
        ("crash".into(), Json::Bool(cfg.crash)),
        ("crash_count".into(), Json::U64(cfg.crash_count as u64)),
        ("world_bound".into(), Json::U64(cfg.world_bound as u64)),
        ("explain_sample".into(), Json::U64(cfg.explain_sample)),
        ("ser_interval".into(), Json::U64(cfg.ser_interval)),
        ("dfs_budget".into(), Json::U64(cfg.dfs_budget as u64)),
        (
            "mutation".into(),
            match cfg.mutation {
                Some(m) => Json::str(m.name()),
                None => Json::str("none"),
            },
        ),
        ("violation_kind".into(), Json::str(v.kind.clone())),
        ("violation_detail".into(), Json::str(v.detail.clone())),
        ("violation_op_index".into(), Json::U64(v.op_index)),
        ("ops_executed".into(), Json::U64(result.ops)),
        ("crashes".into(), Json::U64(result.crashes)),
        ("trace_len".into(), Json::U64(result.trace.len() as u64)),
        (
            "original_trace_len".into(),
            Json::U64(shrunk_from.unwrap_or(result.trace.len()) as u64),
        ),
        ("shrunk".into(), Json::Bool(shrunk_from.is_some())),
        (
            "trace".into(),
            Json::Arr(result.trace.iter().map(|e| Json::Str(e.render())).collect()),
        ),
        ("history_tail".into(), Json::Arr(tail)),
        ("obs_events".into(), Json::Arr(obs)),
    ])
    .render()
}

/// Write the artifact for a failing run into `dir`, returning its path.
pub fn write(
    dir: &Path,
    result: &RunResult,
    cfg: &SimConfig,
    shrunk_from: Option<usize>,
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("failure-{}-{}.json", result.seed, result.engine));
    fs::write(&path, render(result, cfg, shrunk_from))?;
    Ok(path)
}

/// Load `(seed, config, trace)` back from an artifact document.
pub fn load(text: &str) -> Result<(u64, SimConfig, Vec<TraceEntry>), String> {
    if flat_str(text, "schema").as_deref() != Some(SCHEMA) {
        return Err(format!("not a {SCHEMA} artifact"));
    }
    let seed = flat_u64(text, "seed").ok_or("missing seed")?;
    let engine = flat_str(text, "engine")
        .and_then(|s| EngineKind::parse(&s))
        .ok_or("missing or unknown engine")?;
    let mutation = match flat_str(text, "mutation").as_deref() {
        None | Some("none") => None,
        Some(name) => {
            Some(Mutation::parse(name).ok_or_else(|| format!("unknown mutation {name}"))?)
        }
    };
    let need = |key: &str| flat_u64(text, key).ok_or_else(|| format!("missing {key}"));
    let cfg = SimConfig {
        engine,
        clients: need("clients")? as usize,
        ops_per_client: need("ops_per_client")? as usize,
        flights: FlightsConfig {
            flights: need("flights")? as usize,
            rows_per_flight: need("rows_per_flight")? as usize,
        },
        k: need("k")? as usize,
        crash: flat_bool(text, "crash").unwrap_or(true),
        crash_count: need("crash_count")? as usize,
        world_bound: need("world_bound")? as usize,
        explain_sample: need("explain_sample")?,
        ser_interval: need("ser_interval")?,
        dfs_budget: need("dfs_budget")? as usize,
        profile: Default::default(),
        mutation,
    };
    let trace = flat_str_arr(text, "trace")
        .unwrap_or_default()
        .iter()
        .map(|line| {
            TraceEntry::parse(line).ok_or_else(|| format!("unparseable trace line {line:?}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seed, cfg, trace))
}

/// Load an artifact file and deterministically re-run it: the embedded
/// trace is re-executed when present (exact even for shrunk artifacts),
/// falling back to a fresh seeded run for traceless documents.
pub fn replay_file(path: &Path) -> Result<RunResult, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (seed, cfg, trace) = load(&text)?;
    if trace.is_empty() {
        Ok(run_seed(seed, &cfg))
    } else {
        Ok(run_trace(seed, &cfg, &trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_run_roundtrips_through_an_artifact() {
        let cfg = SimConfig {
            clients: 3,
            ops_per_client: 60,
            crash_count: 1,
            ser_interval: 40,
            mutation: Some(Mutation::OverstateCapacity),
            ..SimConfig::smoke(EngineKind::Single)
        };
        let r = run_seed(21, &cfg);
        let v = r.violation.clone().expect("mutation must fail the run");
        let doc = render(&r, &cfg, None);
        // The flight-recorder tail travels with the artifact (diagnostic
        // only — the loader below never reads it, so replay stays exact).
        assert!(doc.contains("\"obs_events\""));
        assert!(!r.obs_events.is_empty(), "a failing run has span events");
        let (seed, cfg2, trace) = load(&doc).expect("artifact parses back");
        assert_eq!(seed, 21);
        assert_eq!(cfg2.mutation, Some(Mutation::OverstateCapacity));
        assert_eq!(trace.len(), r.trace.len(), "full trace travels inline");
        let replayed = crate::driver::run_trace(seed, &cfg2, &trace);
        let v2 = replayed.violation.expect("replay reproduces the violation");
        assert_eq!(v2.kind, v.kind);
        assert_eq!(v2.op_index, v.op_index);
    }

    #[test]
    fn shrunk_artifact_replays_the_minimal_trace() {
        let cfg = SimConfig {
            clients: 3,
            ops_per_client: 60,
            crash_count: 1,
            ser_interval: 40,
            mutation: Some(Mutation::CorruptWalByte),
            ..SimConfig::smoke(EngineKind::Single)
        };
        let (seed, r) = (1..=20)
            .map(|seed| (seed, run_seed(seed, &cfg)))
            .find(|(_, r)| r.violation.is_some())
            .expect("corrupt_wal_byte must fire within 20 seeds");
        let kind = r.violation.as_ref().unwrap().kind.clone();
        let s = crate::shrink::shrink(seed, &cfg, &r.trace, &kind, 400);
        assert!(s.reproduced());
        let minimal = crate::driver::run_trace(seed, &cfg, &s.trace);
        let doc = render(&minimal, &cfg, Some(s.original_len));
        assert!(doc.contains("\"shrunk\":true"));
        let (seed2, cfg2, trace) = load(&doc).expect("artifact parses back");
        assert_eq!(seed2, seed);
        // The re-execution re-records the trace as run (crash cuts are
        // clamped to the shorter log), so the artifact trace is the
        // executed fixpoint of the shrunk trace — same length, and
        // replaying it reproduces the violation exactly.
        assert_eq!(trace, minimal.trace);
        assert_eq!(trace.len(), s.trace.len());
        let replayed = crate::driver::run_trace(seed2, &cfg2, &trace);
        assert_eq!(replayed.violation.expect("still violates").kind, kind);
    }
}
