//! Minimal JSON writing and flat-field reading for failure artifacts.
//!
//! The workspace is an offline build with no `serde`; artifacts are small
//! flat documents we both produce and consume, so a hand-rolled writer
//! plus a scanning reader for top-level scalar fields is all that is
//! needed (the same idiom `qdb-bench` uses for its result files).

/// A JSON value (writer side).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (artifacts never need signed or fractional).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Scan a document for a top-level `"key": <unsigned integer>` field.
pub fn flat_u64(text: &str, key: &str) -> Option<u64> {
    let raw = flat_raw(text, key)?;
    raw.trim().parse().ok()
}

/// Scan a document for a `"key": "string"` field (no escape handling
/// beyond `\"` — artifact strings are machine-generated identifiers).
pub fn flat_str(text: &str, key: &str) -> Option<String> {
    let raw = flat_raw(text, key)?;
    let raw = raw.trim();
    let inner = raw.strip_prefix('"')?;
    let end = inner.find('"')?;
    Some(inner[..end].to_string())
}

/// Scan a document for a `"key": ["s1", "s2", ...]` field of plain
/// strings. No escape handling and no nested arrays — trace lines are
/// machine-generated tokens that contain neither `"` nor `]`.
pub fn flat_str_arr(text: &str, key: &str) -> Option<Vec<String>> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    Some(
        body.split('"')
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, s)| s.to_string())
            .collect(),
    )
}

/// Scan a document for a `"key": true|false` field.
pub fn flat_bool(text: &str, key: &str) -> Option<bool> {
    let raw = flat_raw(text, key)?;
    match raw.trim() {
        t if t.starts_with("true") => Some(true),
        t if t.starts_with("false") => Some(false),
        _ => None,
    }
}

/// The raw text following `"key":`, up to the next delimiter.
fn flat_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    // Cut at the first top-level delimiter; good enough for scalar fields.
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' && i > 0 {
                *in_str = !*in_str;
            } else if c == '"' && i == 0 {
                *in_str = true;
            }
            Some((i, c, *in_str))
        })
        .find(|(_, c, in_str)| !in_str && (*c == ',' || *c == '}'))
        .map(|(i, _, _)| i)
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::U64(42)),
            ("engine".into(), Json::str("sharded")),
            ("crash".into(), Json::Bool(true)),
            ("tail".into(), Json::Arr(vec![Json::str("a\"b")])),
        ])
        .render();
        assert_eq!(flat_u64(&doc, "seed"), Some(42));
        assert_eq!(flat_str(&doc, "engine").as_deref(), Some("sharded"));
        assert_eq!(flat_bool(&doc, "crash"), Some(true));
        assert_eq!(flat_u64(&doc, "missing"), None);
    }

    #[test]
    fn string_arrays_roundtrip() {
        let doc = Json::Obj(vec![
            (
                "trace".into(),
                Json::Arr(vec![Json::str("0 book 3"), Json::str("crash 99 flip 5")]),
            ),
            ("after".into(), Json::U64(1)),
        ])
        .render();
        assert_eq!(
            flat_str_arr(&doc, "trace").as_deref(),
            Some(&["0 book 3".to_string(), "crash 99 flip 5".to_string()][..])
        );
        assert_eq!(flat_str_arr(&doc, "missing"), None);
        let empty = Json::Obj(vec![("trace".into(), Json::Arr(vec![]))]).render();
        assert_eq!(flat_str_arr(&empty, "trace").as_deref(), Some(&[][..]));
    }
}
