//! # qdb-sim
//!
//! Deterministic full-system simulation with black-box serializability
//! checking for the quantum database engine.
//!
//! Three layers (see `docs/SIMULATION.md` for the full story):
//!
//! 1. **Driver** ([`driver`]) — a seeded virtual scheduler interleaves N
//!    logical clients issuing the full statement surface (CHOOSE solo and
//!    entangled, collapse/PEEK/POSSIBLE reads, GROUND / GROUND ALL,
//!    CHECKPOINT, blind INSERT/DELETE) against either engine build, with
//!    crash/restart injection at arbitrary WAL byte offsets. Every run is
//!    a pure function of its `u64` seed.
//! 2. **History recorder** ([`history`]) — every statement outcome lands
//!    in a dbcop-shaped history `(T, so, wr)`: per-session event lists,
//!    the scheduled interleaving, and writes-read edges for observed
//!    rows.
//! 3. **Checker** ([`checker`]) — black-box verification that grounded
//!    outcomes are serializable (greedy WAL-order pass, then a memoized
//!    schedule search), that every PEEK/POSSIBLE answer is explainable by
//!    some possible world at read time, and that the accounting identity
//!    `committed − grounded = pending` plus the domain invariants (seat
//!    conservation, no double booking) hold after every transition.
//!
//! On a violation the sweep writes a repro artifact
//! (`target/sim/failure-<seed>-<engine>.json`, [`artifact`]) that
//! `sim replay` re-runs deterministically.

pub mod artifact;
pub mod checker;
pub mod driver;
pub mod history;
pub mod json;
pub mod replica;
pub mod shrink;

use std::path::{Path, PathBuf};

pub use checker::{CheckStats, SerOutcome, Violation};
pub use driver::{run_seed, run_trace, EngineKind, Mutation, RunResult, SimConfig, TraceEntry};
pub use history::{Event, History, ReadKind};
pub use replica::{
    run_replica_seed, run_replica_sweep, ReplicaRunResult, ReplicaSimConfig, ReplicaSweepOutcome,
};
pub use shrink::ShrinkOutcome;

/// Oracle re-executions a sweep grants the shrinker per failure.
pub const SHRINK_BUDGET: usize = 400;

/// Aggregated result of a multi-seed sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Runs executed (seeds × engines).
    pub runs: u64,
    /// Statements executed across all runs.
    pub total_ops: u64,
    /// Committed CHOOSE submissions.
    pub commits: u64,
    /// Aborted CHOOSE submissions.
    pub aborts: u64,
    /// Crash/restart cycles injected and survived.
    pub crashes: u64,
    /// Summed checker counters.
    pub stats: CheckStats,
    /// Failing runs: `(seed, engine, violation, artifact path if written)`.
    pub failures: Vec<(u64, &'static str, Violation, Option<PathBuf>)>,
}

impl SweepOutcome {
    /// Number of violating runs.
    pub fn violations(&self) -> u64 {
        self.failures.len() as u64
    }
}

/// Run `seeds` consecutive seeds starting at `start_seed` against each
/// engine in `engines`, writing a failure artifact into `artifact_dir`
/// (when given) for every violating run. With `shrink`, each failing
/// trace is delta-debugged first ([`SHRINK_BUDGET`] re-executions) and
/// the artifact carries the minimal trace instead of the raw one.
pub fn run_sweep(
    base: &SimConfig,
    start_seed: u64,
    seeds: u64,
    engines: &[EngineKind],
    artifact_dir: Option<&Path>,
    shrink: bool,
) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for engine in engines {
        let cfg = SimConfig {
            engine: *engine,
            ..base.clone()
        };
        for seed in start_seed..start_seed + seeds {
            let r = run_seed(seed, &cfg);
            out.runs += 1;
            out.total_ops += r.ops;
            out.commits += r.commits;
            out.aborts += r.aborts;
            out.crashes += r.crashes;
            out.stats.add(&r.stats);
            if let Some(v) = r.violation.clone() {
                let path = artifact_dir.and_then(|dir| {
                    let shrunk = shrink
                        .then(|| shrink::shrink(seed, &cfg, &r.trace, &v.kind, SHRINK_BUDGET))
                        .filter(ShrinkOutcome::reproduced);
                    match shrunk {
                        Some(s) => {
                            let repro = run_trace(seed, &cfg, &s.trace);
                            artifact::write(dir, &repro, &cfg, Some(s.original_len)).ok()
                        }
                        None => artifact::write(dir, &r, &cfg, None).ok(),
                    }
                });
                out.failures.push((seed, r.engine, v, path));
            }
        }
    }
    out
}
