//! Black-box outcome checking.
//!
//! The checker never looks inside the engine: its inputs are the WAL (the
//! engine's own durable record of grounded outcomes), the extensional
//! database snapshots the driver takes at epoch boundaries, and the
//! answers the engine returned to reads. Three properties are verified:
//!
//! 1. **Serializability of grounded outcomes** — for each epoch, the
//!    `Ground` and `Write` records since the last epoch boundary must
//!    admit *some* serial order in which every transaction's required
//!    body is satisfied at its turn and its updates apply cleanly
//!    (insert-requires-absent / delete-requires-present), starting from
//!    the epoch-base snapshot. A greedy pass in WAL order is tried first;
//!    a memoized depth-first search over schedules is the fallback. The
//!    search may give up under a node budget — that is reported as
//!    *inconclusive*, never as a violation.
//! 2. **Replay equivalence** — the epoch-base snapshot plus the epoch's
//!    WAL ops, applied in WAL order, must reproduce the engine's current
//!    extensional state bit for bit ([`qdb_core::world_fingerprint`]).
//! 3. **Explainability of uncertain reads** — every PEEK answer and every
//!    POSSIBLE answer set must be producible by some possible world over
//!    the currently pending transactions (checked by the driver with
//!    [`eval_atoms`] over independently enumerated worlds).
//!
//! The schedule search memoizes on the *set* of already-scheduled
//! records: under clean application, presence of a tuple after a set of
//! records is `initial XOR (toggle count parity)` and each record toggles
//! a tuple at most once, so the reached state depends only on the set,
//! not the order — failing suffixes can be cached by set.

use std::collections::{BTreeSet, HashMap, HashSet};

use qdb_logic::{Atom, ResourceTransaction, Term, UpdateKind, Valuation};
use qdb_storage::{ConjunctiveQuery, Database, StorageError, Tuple, TupleView, Value, WriteOp};

/// One schedulable unit: a grounded resource transaction (with its
/// decoded body, when the WAL's `PendingAdd` payload was available) or a
/// blind extensional write.
#[derive(Debug, Clone)]
pub struct GroundedRec {
    /// Engine transaction id; `None` for blind writes.
    pub id: Option<u64>,
    /// The decoded transaction, when this unit is a ground.
    pub txn: Option<ResourceTransaction>,
    /// The concrete ops the WAL says were applied.
    pub ops: Vec<WriteOp>,
}

impl GroundedRec {
    fn label(&self) -> String {
        match self.id {
            Some(id) => format!("T{id}"),
            None => match self.ops.first() {
                Some(op) => format!("write({} {})", op.relation(), render_tuple(op.tuple())),
                None => "write(empty)".to_string(),
            },
        }
    }
}

/// Verdict of [`check_serializable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerOutcome {
    /// A valid serial order exists (witness included, as indexes into the
    /// checked slice).
    Serializable {
        /// One witnessing order.
        order: Vec<usize>,
    },
    /// The search hit its node budget before deciding.
    Inconclusive {
        /// Nodes explored before giving up.
        explored: usize,
    },
    /// No serial order exists.
    Violation {
        /// Human-readable explanation.
        detail: String,
    },
}

/// Aggregated checker counters for a run (and summed across sweeps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Epoch serializability checks performed.
    pub ser_checks: u64,
    /// Epochs settled by the greedy WAL-order pass.
    pub ser_greedy: u64,
    /// Epochs that needed the DFS fallback.
    pub ser_dfs: u64,
    /// Epochs the DFS could not decide within budget.
    pub ser_inconclusive: u64,
    /// Replay-equivalence fingerprint checks.
    pub replay_checks: u64,
    /// Collapse reads verified against the extensional state.
    pub reads_checked: u64,
    /// PEEK/POSSIBLE answers verified explainable.
    pub explain_checked: u64,
    /// PEEK/POSSIBLE checks skipped because enumeration truncated.
    pub explain_skipped: u64,
    /// Accounting + domain invariant sweeps.
    pub invariant_checks: u64,
    /// Crash/recovery equivalence checks.
    pub recovery_checks: u64,
}

impl CheckStats {
    /// Pointwise sum (for sweep aggregation).
    pub fn add(&mut self, o: &CheckStats) {
        self.ser_checks += o.ser_checks;
        self.ser_greedy += o.ser_greedy;
        self.ser_dfs += o.ser_dfs;
        self.ser_inconclusive += o.ser_inconclusive;
        self.replay_checks += o.replay_checks;
        self.reads_checked += o.reads_checked;
        self.explain_checked += o.explain_checked;
        self.explain_skipped += o.explain_skipped;
        self.invariant_checks += o.invariant_checks;
        self.recovery_checks += o.recovery_checks;
    }
}

/// A checker-detected violation — the payload of a failure artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violation class (`not_serializable`, `replay_divergence`,
    /// `peek_unexplainable`, `accounting`, `conservation`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Global op index at which the check fired.
    pub op_index: u64,
}

// ---------------------------------------------------------------------------
// Toggle-overlay state for the schedule search
// ---------------------------------------------------------------------------

/// The extensional state reached by a partial schedule: the epoch-base
/// snapshot plus an overlay of toggled tuples. `Some(true)` = present
/// regardless of base, `Some(false)` = absent regardless of base.
struct ToggleState<'a> {
    base: &'a Database,
    overlay: HashMap<(String, Tuple), bool>,
}

type Undo = Vec<((String, Tuple), Option<bool>)>;

impl<'a> ToggleState<'a> {
    fn new(base: &'a Database) -> Self {
        ToggleState {
            base,
            overlay: HashMap::new(),
        }
    }

    fn present(&self, relation: &str, tuple: &Tuple) -> bool {
        match self.overlay.get(&(relation.to_string(), tuple.clone())) {
            Some(p) => *p,
            None => self.base.contains(relation, tuple),
        }
    }

    /// Rows visible in `relation` under the overlay.
    fn rows(&self, relation: &str) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = match self.base.table(relation) {
            Ok(t) => t
                .iter()
                .filter(|r| {
                    self.overlay
                        .get(&(relation.to_string(), (*r).clone()))
                        .copied()
                        .unwrap_or(true)
                })
                .cloned()
                .collect(),
            Err(_) => Vec::new(),
        };
        for ((rel, tuple), present) in &self.overlay {
            if rel == relation && *present && !self.base.contains(relation, tuple) {
                out.push(tuple.clone());
            }
        }
        out
    }

    /// Apply all of a record's ops cleanly (insert requires absent,
    /// delete requires present) or roll back and return `None`.
    fn apply_clean(&mut self, ops: &[WriteOp]) -> Option<Undo> {
        let mut undo: Undo = Vec::with_capacity(ops.len());
        for op in ops {
            let want_present = op.is_insert();
            if self.present(op.relation(), op.tuple()) == want_present {
                self.rollback(undo);
                return None;
            }
            let key = (op.relation().to_string(), op.tuple().clone());
            let prev = self.overlay.insert(key.clone(), want_present);
            undo.push((key, prev));
        }
        Some(undo)
    }

    fn rollback(&mut self, undo: Undo) {
        for (key, prev) in undo.into_iter().rev() {
            match prev {
                Some(p) => {
                    self.overlay.insert(key, p);
                }
                None => {
                    self.overlay.remove(&key);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Record application: valuation reconstruction + body satisfaction
// ---------------------------------------------------------------------------

/// Reconstruct the chosen valuation of a grounded transaction by unifying
/// its update atoms with the concrete ops the WAL recorded for it.
fn valuation_from_ops(txn: &ResourceTransaction, ops: &[WriteOp]) -> Option<Valuation> {
    if txn.updates.len() != ops.len() {
        return None;
    }
    let mut val = Valuation::new();
    for (u, op) in txn.updates.iter().zip(ops) {
        let kind_ok = match u.kind {
            UpdateKind::Insert => op.is_insert(),
            UpdateKind::Delete => !op.is_insert(),
        };
        if !kind_ok
            || u.atom.relation.as_ref() != op.relation()
            || u.atom.terms.len() != op.tuple().arity()
        {
            return None;
        }
        for (term, value) in u.atom.terms.iter().zip(op.tuple().iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => match val.get(v) {
                    Some(bound) => {
                        if bound != value {
                            return None;
                        }
                    }
                    None => {
                        val.bind(v.clone(), value.clone());
                    }
                },
            }
        }
    }
    Some(val)
}

/// Backtracking check that every atom in `atoms` is satisfied in `state`
/// under some extension of `val`.
fn body_satisfied(state: &ToggleState<'_>, atoms: &[&Atom], val: &mut Valuation) -> bool {
    let Some((first, rest)) = atoms.split_first() else {
        return true;
    };
    // Fully ground atoms are a straight membership probe.
    let resolved: Vec<Option<Value>> = first.terms.iter().map(|t| val.resolve(t)).collect();
    if resolved.iter().all(|v| v.is_some()) {
        let tuple = Tuple::new(
            resolved
                .into_iter()
                .map(|v| v.expect("all terms resolved"))
                .collect::<Vec<_>>(),
        );
        return state.present(first.relation.as_ref(), &tuple) && body_satisfied(state, rest, val);
    }
    for row in state.rows(first.relation.as_ref()) {
        if row.arity() != first.terms.len() {
            continue;
        }
        let mut bound_here = Vec::new();
        let mut ok = true;
        for (term, value) in first.terms.iter().zip(row.iter()) {
            match val.resolve(term) {
                Some(v) => {
                    if &v != value {
                        ok = false;
                        break;
                    }
                }
                None => {
                    let var = term
                        .as_var()
                        .expect("unresolved term must be a variable")
                        .clone();
                    val.bind(var.clone(), value.clone());
                    bound_here.push(var);
                }
            }
        }
        if ok && body_satisfied(state, rest, val) {
            return true;
        }
        for var in bound_here {
            val.unbind(&var);
        }
    }
    false
}

/// Can `rec` run *now* in `state`? On success the state is advanced and
/// the undo log returned.
fn try_apply(state: &mut ToggleState<'_>, rec: &GroundedRec) -> Option<Undo> {
    if let Some(txn) = &rec.txn {
        let mut val = valuation_from_ops(txn, &rec.ops)?;
        let required: Vec<&Atom> = txn.required_body().map(|b| &b.atom).collect();
        if !body_satisfied(state, &required, &mut val) {
            return None;
        }
    }
    state.apply_clean(&rec.ops)
}

// ---------------------------------------------------------------------------
// Schedule search
// ---------------------------------------------------------------------------

fn mask_of(scheduled: &[bool]) -> Vec<u64> {
    let mut mask = vec![0u64; scheduled.len().div_ceil(64)];
    for (i, s) in scheduled.iter().enumerate() {
        if *s {
            mask[i / 64] |= 1 << (i % 64);
        }
    }
    mask
}

struct Search<'a> {
    recs: &'a [GroundedRec],
    budget: usize,
    explored: usize,
    failed: HashSet<Vec<u64>>,
}

impl Search<'_> {
    /// Returns `Some(true)` when a completion exists, `Some(false)` when
    /// provably none does, `None` on budget exhaustion.
    fn dfs(
        &mut self,
        state: &mut ToggleState<'_>,
        scheduled: &mut [bool],
        order: &mut Vec<usize>,
    ) -> Option<bool> {
        if order.len() == self.recs.len() {
            return Some(true);
        }
        if self.explored >= self.budget {
            return None;
        }
        let mask = mask_of(scheduled);
        if self.failed.contains(&mask) {
            return Some(false);
        }
        for i in 0..self.recs.len() {
            if scheduled[i] {
                continue;
            }
            self.explored += 1;
            if let Some(undo) = try_apply(state, &self.recs[i]) {
                scheduled[i] = true;
                order.push(i);
                match self.dfs(state, scheduled, order) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                order.pop();
                scheduled[i] = false;
                state.rollback(undo);
            }
        }
        self.failed.insert(mask);
        Some(false)
    }
}

/// Decide whether the epoch's grounded outcomes are serializable against
/// the `base` snapshot (see module docs for the exact statement).
pub fn check_serializable(
    base: &Database,
    recs: &[GroundedRec],
    node_budget: usize,
) -> (SerOutcome, bool) {
    if recs.is_empty() {
        return (SerOutcome::Serializable { order: Vec::new() }, true);
    }
    // Greedy pass: WAL order is the engine's own application order and is
    // almost always a witness.
    let mut state = ToggleState::new(base);
    let mut order = Vec::with_capacity(recs.len());
    let mut greedy_ok = true;
    for (i, rec) in recs.iter().enumerate() {
        if try_apply(&mut state, rec).is_some() {
            order.push(i);
        } else {
            greedy_ok = false;
            break;
        }
    }
    if greedy_ok {
        return (SerOutcome::Serializable { order }, true);
    }
    // Full search.
    let mut state = ToggleState::new(base);
    let mut scheduled = vec![false; recs.len()];
    let mut order = Vec::with_capacity(recs.len());
    let mut search = Search {
        recs,
        budget: node_budget,
        explored: 0,
        failed: HashSet::new(),
    };
    match search.dfs(&mut state, &mut scheduled, &mut order) {
        Some(true) => (SerOutcome::Serializable { order }, false),
        None => (
            SerOutcome::Inconclusive {
                explored: search.explored,
            },
            false,
        ),
        Some(false) => {
            let labels: Vec<String> = recs.iter().map(GroundedRec::label).collect();
            (
                SerOutcome::Violation {
                    detail: format!(
                        "no serial order over {} grounded outcomes [{}] satisfies every body \
                         and applies every update cleanly",
                        recs.len(),
                        labels.join(", ")
                    ),
                },
                false,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Read explainability support
// ---------------------------------------------------------------------------

/// Evaluate a conjunctive query (logic atoms) against any tuple view —
/// the checker's own, public-API-only counterpart of the engine's
/// internal evaluator, so read answers are verified by an independent
/// code path.
pub fn eval_atoms<V: TupleView + ?Sized>(
    view: &V,
    atoms: &[Atom],
) -> Result<Vec<Valuation>, StorageError> {
    let empty = Valuation::new();
    let patterns = atoms.iter().map(|a| a.to_pattern(&empty)).collect();
    let out = ConjunctiveQuery::new(patterns).eval(view)?;
    let mut by_id = std::collections::BTreeMap::new();
    for a in atoms {
        for v in a.vars() {
            by_id.entry(v.id()).or_insert_with(|| v.clone());
        }
    }
    Ok(out
        .bindings
        .into_iter()
        .map(|b| {
            let mut val = Valuation::new();
            for (id, value) in b {
                val.bind(by_id[&id].clone(), value);
            }
            val
        })
        .collect())
}

/// A canonical, order-insensitive form of one answer row.
pub type CanonRow = Vec<(String, Value)>;

/// A canonical answer set: sorted canonical rows.
pub type CanonSet = Vec<CanonRow>;

/// Canonicalize one valuation by variable *name* (names are unique within
/// a parsed query).
pub fn canon_row(val: &Valuation) -> CanonRow {
    let mut row: CanonRow = val
        .iter()
        .map(|(var, value)| (var.name().to_string(), value.clone()))
        .collect();
    row.sort();
    row
}

/// Canonicalize a whole answer set (row order is evaluation-order noise).
pub fn canon_set(answers: &[Valuation]) -> CanonSet {
    let mut set: CanonSet = answers.iter().map(canon_row).collect();
    set.sort();
    set
}

/// Canonicalize a family of answer sets (POSSIBLE results).
pub fn canon_family(families: &[Vec<Valuation>]) -> BTreeSet<CanonSet> {
    families.iter().map(|f| canon_set(f)).collect()
}

fn render_tuple(t: &Tuple) -> String {
    let parts: Vec<String> = t.iter().map(|v| format!("{v}")).collect();
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_logic::parse_transaction;
    use qdb_storage::{tuple, Schema, ValueType};

    fn base() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "Available",
            vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Bookings",
            vec![
                ("name", ValueType::Str),
                ("flight", ValueType::Int),
                ("seat", ValueType::Str),
            ],
        ))
        .unwrap();
        db.insert("Available", tuple![1, "1A"]).unwrap();
        db.insert("Available", tuple![1, "1B"]).unwrap();
        db
    }

    fn booking(user: &str, seat: &str) -> GroundedRec {
        let txn = parse_transaction(&format!(
            "-Available(1, s), +Bookings('{user}', 1, s) :-1 Available(1, s)"
        ))
        .unwrap();
        GroundedRec {
            id: Some(1),
            ops: vec![
                WriteOp::delete("Available", tuple![1, seat]),
                WriteOp::insert("Bookings", tuple![user, 1, seat]),
            ],
            txn: Some(txn),
        }
    }

    #[test]
    fn wal_order_is_accepted_greedily() {
        let db = base();
        let recs = vec![booking("a", "1A"), booking("b", "1B")];
        let (outcome, greedy) = check_serializable(&db, &recs, 10_000);
        assert!(matches!(outcome, SerOutcome::Serializable { .. }));
        assert!(greedy);
    }

    #[test]
    fn reordering_is_found_by_search() {
        let db = base();
        // A blind re-insert of 1A first in WAL order, then a booking that
        // consumed 1A: greedy fails (inserting a present tuple), but the
        // schedule [booking, insert] is valid.
        let recs = vec![
            GroundedRec {
                id: None,
                txn: None,
                ops: vec![WriteOp::insert("Available", tuple![1, "1A"])],
            },
            booking("a", "1A"),
        ];
        let (outcome, greedy) = check_serializable(&db, &recs, 10_000);
        assert!(!greedy);
        match outcome {
            SerOutcome::Serializable { order } => assert_eq!(order, vec![1, 0]),
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn impossible_outcome_is_a_violation() {
        let db = base();
        // Two bookings both claim seat 1A: the second delete can never
        // apply cleanly in any order.
        let recs = vec![booking("a", "1A"), booking("b", "1A")];
        let (outcome, _) = check_serializable(&db, &recs, 10_000);
        assert!(matches!(outcome, SerOutcome::Violation { .. }));
    }

    #[test]
    fn unsatisfied_body_is_a_violation() {
        let db = base();
        // The op set pretends seat 9Z was available; no order makes the
        // body true because the base never held it.
        let recs = vec![booking("a", "9Z")];
        let (outcome, _) = check_serializable(&db, &recs, 10_000);
        assert!(matches!(outcome, SerOutcome::Violation { .. }));
    }

    #[test]
    fn canon_forms_ignore_order() {
        let db = base();
        let atoms = qdb_logic::parse_query("Available(f, s)").unwrap().atoms;
        let view = qdb_storage::DeltaView::new(&db);
        let mut answers = eval_atoms(&view, &atoms).unwrap();
        assert_eq!(answers.len(), 2);
        let c1 = canon_set(&answers);
        answers.reverse();
        assert_eq!(c1, canon_set(&answers));
    }
}
