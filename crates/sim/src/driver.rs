//! The deterministic full-system driver.
//!
//! A run is a **pure function of its `u64` seed**: the seed fixes the
//! per-client statement streams ([`qdb_workload::build_client_streams`]),
//! the virtual scheduler's interleaving, the crash cut points, and —
//! via [`qdb_core::QuantumDbConfig::seed`] — every nondeterministic
//! choice point inside the engine itself (solver tie-breaks, world
//! enumeration order). Two runs with the same seed and config produce
//! bit-identical histories, final states and checker verdicts, which is
//! what makes `sim replay --seed <s>` a faithful reproduction of any
//! failure.
//!
//! The driver interleaves N logical clients over either engine build
//! (`QuantumDb` single-threaded core or the sharded
//! [`qdb_core::SharedQuantumDb`]), records every statement into a
//! [`History`], and runs the black-box checks of [`crate::checker`]
//! after every transition (invariants), at epoch boundaries
//! (serializability + replay equivalence) and on sampled uncertain reads
//! (explainability). Crash injection cuts the WAL image at an arbitrary
//! byte offset, restarts the engine from the prefix via
//! [`qdb_core::QuantumDb::recover`], and verifies the recovered state
//! against an independently replayed model before resuming the workload.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use qdb_core::{
    enumerate_worlds_seeded, world_fingerprint, QuantumDb, QuantumDbConfig, SharedQuantumDb,
    SubmitOutcome, TxnId,
};
use qdb_logic::codec::decode_transaction;
use qdb_logic::{parse_query, Atom, ResourceTransaction, Term, UpdateKind, Valuation};
use qdb_storage::wal::{replay_bytes, MemorySink};
use qdb_storage::{tuple, Database, DeltaView, LogRecord, Schema, ValueType, Wal, WriteOp};
use qdb_workload::entangled::{entangled_booking, solo_booking};
use qdb_workload::rng::StdRng;
use qdb_workload::{build_client_streams, FlightsConfig, SimOp, StreamProfile};

use crate::checker::{
    canon_family, canon_set, check_serializable, eval_atoms, CanonSet, CheckStats, GroundedRec,
    SerOutcome, Violation,
};
use crate::history::{Event, History, ReadKind, Site};

/// Which engine build a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded [`QuantumDb`] core.
    Single,
    /// The partition-parallel [`SharedQuantumDb`].
    Sharded,
}

impl EngineKind {
    /// Stable label (used in reports and artifact file names).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Single => "single",
            EngineKind::Sharded => "sharded",
        }
    }

    /// Parse a label back.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "single" => Some(EngineKind::Single),
            "sharded" => Some(EngineKind::Sharded),
            _ => None,
        }
    }
}

/// Checker mutations for mutation-testing the harness itself: each one
/// corrupts the *checker's model* (never the engine), so a healthy
/// engine run must now produce a violation — proving the corresponding
/// invariant is actually armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Overstate every flight's expected capacity by one seat, breaking
    /// the conservation invariant `|Available(f)| + |Bookings(f)| =
    /// capacity(f)`.
    OverstateCapacity,
}

impl Mutation {
    /// Stable name (artifact field).
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::OverstateCapacity => "overstate_capacity",
        }
    }

    /// Parse a stable name back.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "overstate_capacity" => Some(Mutation::OverstateCapacity),
            _ => None,
        }
    }
}

/// Full simulation configuration. Together with the seed this determines
/// a run completely.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Engine build under test.
    pub engine: EngineKind,
    /// Logical client sessions.
    pub clients: usize,
    /// Statements per client.
    pub ops_per_client: usize,
    /// Flight database shape.
    pub flights: FlightsConfig,
    /// Engine `k` bound (small values force frequent grounding).
    pub k: usize,
    /// Inject crash/restart cycles?
    pub crash: bool,
    /// How many crash points per run (when `crash` is on).
    pub crash_count: usize,
    /// World-enumeration bound for POSSIBLE reads and explainability.
    pub world_bound: usize,
    /// Check every n-th PEEK/POSSIBLE for explainability (`0` = never).
    pub explain_sample: u64,
    /// Serializability-check cadence in ops (`0` = only at crashes and
    /// run end).
    pub ser_interval: u64,
    /// Node budget for the serializability DFS fallback.
    pub dfs_budget: usize,
    /// Statement mix.
    pub profile: StreamProfile,
    /// Optional checker mutation (see [`Mutation`]).
    pub mutation: Option<Mutation>,
}

impl SimConfig {
    /// The CI smoke scale: 4 clients × 250 ops over a 3-flight database
    /// with a tight `k`, crash injection on.
    pub fn smoke(engine: EngineKind) -> SimConfig {
        SimConfig {
            engine,
            clients: 4,
            ops_per_client: 250,
            flights: FlightsConfig {
                flights: 3,
                rows_per_flight: 6,
            },
            k: 5,
            crash: true,
            crash_count: 2,
            world_bound: 64,
            explain_sample: 5,
            ser_interval: 100,
            dfs_budget: 30_000,
            profile: StreamProfile::default(),
            mutation: None,
        }
    }

    /// Total statements a run executes.
    pub fn total_ops(&self) -> usize {
        self.clients * self.ops_per_client
    }

    /// The engine configuration a run uses (the run seed is threaded into
    /// every engine choice point).
    pub fn quantum_config(&self, seed: u64) -> QuantumDbConfig {
        QuantumDbConfig {
            k: self.k,
            seed,
            ..QuantumDbConfig::default()
        }
    }

    fn flight_num(&self, idx: usize) -> i64 {
        (idx % self.flights.flights.max(1)) as i64 + 1
    }
}

/// Outcome of one seeded run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The seed.
    pub seed: u64,
    /// Engine label.
    pub engine: &'static str,
    /// Statements executed before the run ended (or failed).
    pub ops: u64,
    /// Committed CHOOSE submissions.
    pub commits: u64,
    /// Aborted CHOOSE submissions.
    pub aborts: u64,
    /// Injected crash/restart cycles survived.
    pub crashes: u64,
    /// Checker counters.
    pub stats: CheckStats,
    /// The first violation, if the checker found one.
    pub violation: Option<Violation>,
    /// Final extensional-state fingerprint.
    pub fingerprint: String,
    /// Stable digest of history + final state (determinism witness).
    pub digest: u64,
    /// The full recorded history.
    pub history: History,
    /// The engine's most recent flight-recorder events at run end (the
    /// failure artifact embeds them as diagnostic context; they never
    /// feed the determinism digest — span timings are wall-clock).
    pub obs_events: Vec<qdb_core::SpanEvent>,
}

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

enum Engine {
    Single(Box<QuantumDb>),
    Sharded(SharedQuantumDb),
}

impl Engine {
    fn build(
        kind: EngineKind,
        qcfg: QuantumDbConfig,
        fl: &FlightsConfig,
    ) -> qdb_core::Result<Engine> {
        let mut qdb = QuantumDb::new(qcfg)?;
        qdb_workload::flights::install(&mut qdb, fl)?;
        qdb.create_table(audit_schema())?;
        Ok(match kind {
            EngineKind::Single => Engine::Single(Box::new(qdb)),
            EngineKind::Sharded => Engine::Sharded(qdb.into_shared()),
        })
    }

    fn recover(
        kind: EngineKind,
        image: Vec<u8>,
        qcfg: QuantumDbConfig,
    ) -> qdb_core::Result<Engine> {
        let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
        let qdb = QuantumDb::recover(wal, qcfg)?;
        Ok(match kind {
            EngineKind::Single => Engine::Single(Box::new(qdb)),
            EngineKind::Sharded => Engine::Sharded(qdb.into_shared()),
        })
    }

    /// Run one driver-level operation inside a flight-recorder span. The
    /// sim drives the engine API directly (no statement layer), so
    /// without this the event ring would stay empty; the class names
    /// match `Statement::kind()` so artifact events read like
    /// statements. Timings are wall-clock and never feed the
    /// determinism digest.
    fn record<R>(
        &mut self,
        class: &'static str,
        run: impl FnOnce(&mut Self) -> qdb_core::Result<R>,
        outcome: impl FnOnce(&R) -> qdb_core::Outcome,
    ) -> qdb_core::Result<R> {
        let obs = self.obs().clone();
        let token = obs.begin_op(class);
        let r = run(self);
        let o = match &r {
            Ok(v) => outcome(v),
            Err(_) => qdb_core::Outcome::Error,
        };
        obs.finish_op(token, o, None);
        r
    }

    fn submit(&mut self, txn: &ResourceTransaction) -> qdb_core::Result<SubmitOutcome> {
        self.record(
            "SELECT … CHOOSE 1",
            |e| match e {
                Engine::Single(q) => q.submit(txn),
                Engine::Sharded(s) => s.submit(txn),
            },
            |o| {
                if o.is_committed() {
                    qdb_core::Outcome::Ok
                } else {
                    qdb_core::Outcome::Aborted
                }
            },
        )
    }

    fn read(&mut self, atoms: &[Atom]) -> qdb_core::Result<Vec<Valuation>> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read(atoms, None),
                Engine::Sharded(s) => s.read(atoms, None),
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn read_peek(&mut self, atoms: &[Atom]) -> qdb_core::Result<Vec<Valuation>> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read_peek(atoms, None),
                Engine::Sharded(s) => s.read_peek(atoms, None),
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn read_possible(
        &mut self,
        atoms: &[Atom],
        bound: usize,
    ) -> qdb_core::Result<Vec<Vec<Valuation>>> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read_possible(atoms, bound),
                Engine::Sharded(s) => s.read_possible(atoms, bound),
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn write(&mut self, op: WriteOp) -> qdb_core::Result<bool> {
        match self {
            Engine::Single(q) => q.write(op),
            Engine::Sharded(s) => s.write(op),
        }
    }

    fn ground(&mut self, id: TxnId) -> qdb_core::Result<bool> {
        match self {
            Engine::Single(q) => q.ground(id),
            Engine::Sharded(s) => s.ground(id),
        }
    }

    fn ground_all(&mut self) -> qdb_core::Result<()> {
        match self {
            Engine::Single(q) => q.ground_all(),
            Engine::Sharded(s) => s.ground_all(),
        }
    }

    fn checkpoint(&mut self) -> qdb_core::Result<()> {
        match self {
            Engine::Single(q) => q.checkpoint(),
            Engine::Sharded(s) => s.checkpoint(),
        }
    }

    fn pending_ids(&self) -> Vec<TxnId> {
        match self {
            Engine::Single(q) => q.pending_ids(),
            Engine::Sharded(s) => s.pending_ids(),
        }
    }

    fn wal_image(&mut self) -> Vec<u8> {
        match self {
            Engine::Single(q) => q.wal_image(),
            Engine::Sharded(s) => s.wal_image(),
        }
    }

    fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        match self {
            Engine::Single(q) => f(q.database()),
            Engine::Sharded(s) => s.with_database(f),
        }
    }

    /// The engine's observability handle.
    fn obs(&self) -> &std::sync::Arc<qdb_core::Obs> {
        match self {
            Engine::Single(q) => q.obs(),
            Engine::Sharded(s) => s.obs(),
        }
    }

    /// The most recent `limit` flight-recorder events, oldest first.
    fn events(&self, limit: usize) -> Vec<qdb_core::SpanEvent> {
        self.obs().events(limit)
    }

    /// `(committed, grounded, pending)` — read together so the §2
    /// accounting identity can be checked atomically.
    fn accounting(&self) -> (u64, u64, u64) {
        match self {
            Engine::Single(q) => {
                let m = q.metrics();
                (m.committed, m.grounded_total(), q.pending_count() as u64)
            }
            Engine::Sharded(s) => {
                let (m, pending) = s.metrics_with_pending();
                (m.committed, m.grounded_total(), pending)
            }
        }
    }
}

fn audit_schema() -> Schema {
    Schema::new("Audit", vec![("tag", ValueType::Int)])
}

fn booking_atoms(user: &str) -> Vec<Atom> {
    parse_query(&format!("Bookings('{user}', f, s)"))
        .expect("generated booking query is well-formed")
        .atoms
}

/// The `(user, flight)` a pending booking transaction would create, read
/// off its `+Bookings(...)` update atom.
fn booking_user_flight(txn: &ResourceTransaction) -> Option<(String, i64)> {
    for u in &txn.updates {
        if u.kind == UpdateKind::Insert && u.atom.relation.as_ref() == "Bookings" {
            let user = match u.atom.terms.first()? {
                Term::Const(v) => v.as_str()?.to_string(),
                Term::Var(_) => return None,
            };
            let flight = match u.atom.terms.get(1)? {
                Term::Const(v) => v.as_int()?,
                Term::Var(_) => return None,
            };
            return Some((user, flight));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Driver {
    cfg: SimConfig,
    seed: u64,
    qcfg: QuantumDbConfig,
    engine: Engine,
    hist: History,
    rng: StdRng,
    stats: CheckStats,
    op_index: u64,
    commits: u64,
    aborts: u64,
    crashes: u64,
    uncertain_reads: u64,
    // Checker model (rebuilt from the WAL prefix after every crash).
    capacity: BTreeMap<i64, usize>,
    audit_live: Vec<i64>,
    txn_bodies: HashMap<TxnId, ResourceTransaction>,
    booked: Vec<(String, i64)>,
    user_sites: HashMap<String, Site>,
    next_user: u64,
    next_audit: i64,
    next_seat: u64,
    epoch_base: Database,
    records_seen: usize,
    /// WAL bytes covering schema install + initial bulk load; crash cuts
    /// never land inside this prefix (setup is synced before traffic).
    setup_bytes: usize,
}

impl Driver {
    fn new(seed: u64, cfg: &SimConfig) -> Result<Driver, Violation> {
        let qcfg = cfg.quantum_config(seed);
        let engine =
            Engine::build(cfg.engine, qcfg.clone(), &cfg.flights).map_err(|e| Violation {
                kind: "setup".into(),
                detail: e.to_string(),
                op_index: 0,
            })?;
        let mut d = Driver {
            cfg: cfg.clone(),
            seed,
            qcfg,
            engine,
            hist: History::new(cfg.clients),
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_5EED_5EED_5EED),
            stats: CheckStats::default(),
            op_index: 0,
            commits: 0,
            aborts: 0,
            crashes: 0,
            uncertain_reads: 0,
            capacity: BTreeMap::new(),
            audit_live: Vec::new(),
            txn_bodies: HashMap::new(),
            booked: Vec::new(),
            user_sites: HashMap::new(),
            next_user: 0,
            next_audit: 0,
            next_seat: 0,
            epoch_base: Database::new(),
            records_seen: 0,
            setup_bytes: 0,
        };
        for f in cfg.flights.flight_numbers() {
            d.capacity.insert(f, cfg.flights.seats_per_flight());
        }
        // Baseline the first epoch on the freshly installed state.
        let image = d.engine.wal_image();
        let (records, _) = replay_bytes(&image)
            .map_err(|e| d.viol("setup", format!("initial WAL unreadable: {e}")))?;
        d.records_seen = records.len();
        d.setup_bytes = image.len();
        d.epoch_base = d.engine.with_db(Database::clone);
        Ok(d)
    }

    fn viol(&self, kind: &str, detail: String) -> Violation {
        Violation {
            kind: kind.to_string(),
            detail,
            op_index: self.op_index,
        }
    }

    fn engine_err(&self, e: qdb_core::EngineError) -> Violation {
        self.viol("engine_error", e.to_string())
    }

    fn drive(&mut self) -> Result<(), Violation> {
        let streams = build_client_streams(
            &self.cfg.flights,
            self.cfg.clients,
            self.cfg.ops_per_client,
            self.seed,
            &self.cfg.profile,
        );
        let total = self.cfg.total_ops() as u64;
        let mut crash_at: BTreeSet<u64> = BTreeSet::new();
        if self.cfg.crash && total > 1 {
            let mut tries = 0;
            while crash_at.len() < self.cfg.crash_count && tries < 64 {
                crash_at.insert(self.rng.gen_range(1..total as usize) as u64);
                tries += 1;
            }
        }
        let mut cursors = vec![0usize; self.cfg.clients];
        loop {
            let live: Vec<usize> = (0..self.cfg.clients)
                .filter(|&c| cursors[c] < self.cfg.ops_per_client)
                .collect();
            if live.is_empty() {
                break;
            }
            let c = live[self.rng.gen_range(0..live.len())];
            let op = streams[c][cursors[c]].clone();
            cursors[c] += 1;
            self.exec(c, &op)?;
            self.check_invariants()?;
            self.op_index += 1;
            if crash_at.remove(&self.op_index) {
                self.crash()?;
            } else if self.cfg.ser_interval > 0
                && self.op_index.is_multiple_of(self.cfg.ser_interval)
            {
                self.ser_check()?;
            }
        }
        self.ser_check()
    }

    // -- statement execution ------------------------------------------------

    fn exec(&mut self, c: usize, op: &SimOp) -> Result<(), Violation> {
        match op {
            SimOp::Book { flight } => self.book(c, *flight, None),
            SimOp::BookEntangled { flight, partner } => self.book(c, *flight, Some(*partner)),
            SimOp::Read { target } => self.read_collapse(c, *target),
            SimOp::Peek { target } => self.read_uncertain(c, *target, ReadKind::Peek),
            SimOp::Possible { target } => self.read_uncertain(c, *target, ReadKind::Possible),
            SimOp::Ground { nth } => {
                let ids = self.engine.pending_ids();
                if ids.is_empty() {
                    self.noop(c, "GROUND");
                    return Ok(());
                }
                let id = ids[nth % ids.len()];
                let collapsed = self.engine.ground(id).map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::Ground { id, collapsed });
                Ok(())
            }
            SimOp::GroundAll => {
                self.engine.ground_all().map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::GroundAll);
                Ok(())
            }
            SimOp::Checkpoint => {
                self.engine.checkpoint().map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::Checkpoint);
                Ok(())
            }
            SimOp::AuditInsert => {
                let tag = self.next_audit;
                self.next_audit += 1;
                let applied = self.blind_write(
                    c,
                    WriteOp::insert("Audit", tuple![tag]),
                    format!("+Audit({tag})"),
                )?;
                if applied {
                    self.audit_live.push(tag);
                }
                Ok(())
            }
            SimOp::AuditDelete { nth } => {
                if self.audit_live.is_empty() {
                    self.noop(c, "AUDIT-DELETE");
                    return Ok(());
                }
                let tag = self.audit_live[nth % self.audit_live.len()];
                let applied = self.blind_write(
                    c,
                    WriteOp::delete("Audit", tuple![tag]),
                    format!("-Audit({tag})"),
                )?;
                if applied {
                    self.audit_live.retain(|t| *t != tag);
                }
                Ok(())
            }
            SimOp::SeatAdd { flight } => {
                let fnum = self.cfg.flight_num(*flight);
                let seat = format!("Z{}", self.next_seat);
                self.next_seat += 1;
                let applied = self.blind_write(
                    c,
                    WriteOp::insert("Available", tuple![fnum, seat.as_str()]),
                    format!("+Available({fnum},{seat})"),
                )?;
                if applied {
                    *self.capacity.entry(fnum).or_insert(0) += 1;
                }
                Ok(())
            }
            SimOp::SeatRemove { flight, nth } => {
                let fnum = self.cfg.flight_num(*flight);
                let mut seats: Vec<String> = self.engine.with_db(|db| {
                    db.table("Available")
                        .map(|t| {
                            t.iter()
                                .filter(|r| r.get(0).and_then(|v| v.as_int()) == Some(fnum))
                                .filter_map(|r| r.get(1).and_then(|v| v.as_str()).map(String::from))
                                .collect()
                        })
                        .unwrap_or_default()
                });
                seats.sort();
                if seats.is_empty() {
                    self.noop(c, "SEAT-REMOVE");
                    return Ok(());
                }
                let seat = seats[nth % seats.len()].clone();
                let applied = self.blind_write(
                    c,
                    WriteOp::delete("Available", tuple![fnum, seat.as_str()]),
                    format!("-Available({fnum},{seat})"),
                )?;
                if applied {
                    let cap = self.capacity.entry(fnum).or_insert(0);
                    *cap = cap.saturating_sub(1);
                }
                Ok(())
            }
        }
    }

    fn noop(&mut self, c: usize, op: &str) {
        self.hist.record(c, Event::Noop { op: op.to_string() });
    }

    fn blind_write(&mut self, c: usize, op: WriteOp, desc: String) -> Result<bool, Violation> {
        let applied = self.engine.write(op).map_err(|e| self.engine_err(e))?;
        self.hist.record(c, Event::Write { desc, applied });
        Ok(applied)
    }

    fn book(&mut self, c: usize, flight: usize, partner: Option<usize>) -> Result<(), Violation> {
        let fnum = self.cfg.flight_num(flight);
        let user = format!("u{}", self.next_user);
        self.next_user += 1;
        let (txn, entangled) = {
            let candidates: Vec<&str> = match partner {
                Some(_) => self
                    .booked
                    .iter()
                    .filter(|(_, f)| *f == fnum)
                    .map(|(u, _)| u.as_str())
                    .collect(),
                None => Vec::new(),
            };
            match partner {
                Some(p) if !candidates.is_empty() => (
                    entangled_booking(&user, candidates[p % candidates.len()], fnum),
                    true,
                ),
                _ => (solo_booking(&user, fnum), false),
            }
        };
        let outcome = self.engine.submit(&txn).map_err(|e| self.engine_err(e))?;
        match outcome {
            SubmitOutcome::Committed { id } => {
                self.commits += 1;
                self.txn_bodies.insert(id, txn);
                self.booked.push((user.clone(), fnum));
                let site = self.hist.record(
                    c,
                    Event::Submit {
                        user: user.clone(),
                        flight: fnum,
                        entangled,
                        id: Some(id),
                    },
                );
                self.user_sites.insert(user, site);
            }
            SubmitOutcome::Aborted => {
                self.aborts += 1;
                self.hist.record(
                    c,
                    Event::Submit {
                        user,
                        flight: fnum,
                        entangled,
                        id: None,
                    },
                );
            }
        }
        Ok(())
    }

    fn pick_booked(&self, target: usize) -> Option<String> {
        if self.booked.is_empty() {
            None
        } else {
            Some(self.booked[target % self.booked.len()].0.clone())
        }
    }

    /// Phantom check: non-empty answers require a known committed writer.
    fn wr_site(&self, user: &str, observed_rows: bool) -> Result<Option<Site>, Violation> {
        if !observed_rows {
            return Ok(None);
        }
        match self.user_sites.get(user) {
            Some(site) => Ok(Some(*site)),
            None => Err(self.viol(
                "phantom_read",
                format!("rows observed for {user}, who has no committed submission"),
            )),
        }
    }

    fn read_collapse(&mut self, c: usize, target: usize) -> Result<(), Violation> {
        let Some(user) = self.pick_booked(target) else {
            self.noop(c, "READ");
            return Ok(());
        };
        let atoms = booking_atoms(&user);
        let rows = self.engine.read(&atoms).map_err(|e| self.engine_err(e))?;
        // Collapse reads must fully hide uncertainty: the answer is the
        // extensional answer at return time, verified by an independent
        // evaluator.
        let ext = self
            .engine
            .with_db(|db| eval_atoms(&DeltaView::new(db), &atoms))
            .map_err(|e| self.viol("storage_error", e.to_string()))?;
        if canon_set(&rows) != canon_set(&ext) {
            return Err(self.viol(
                "read_not_collapsed",
                format!(
                    "READ {user}: engine returned {} rows, extensional state holds {}",
                    rows.len(),
                    ext.len()
                ),
            ));
        }
        self.stats.reads_checked += 1;
        let wr = self.wr_site(&user, !rows.is_empty())?;
        self.hist.record(
            c,
            Event::Read {
                kind: ReadKind::Collapse,
                user,
                answers: rows.len(),
                wr,
            },
        );
        Ok(())
    }

    fn read_uncertain(&mut self, c: usize, target: usize, kind: ReadKind) -> Result<(), Violation> {
        let Some(user) = self.pick_booked(target) else {
            self.noop(
                c,
                if kind == ReadKind::Peek {
                    "PEEK"
                } else {
                    "POSSIBLE"
                },
            );
            return Ok(());
        };
        let atoms = booking_atoms(&user);
        self.uncertain_reads += 1;
        let sampled = self.cfg.explain_sample > 0
            && self.uncertain_reads.is_multiple_of(self.cfg.explain_sample);
        let (answers, observed_rows) = match kind {
            ReadKind::Peek => {
                let rows = self
                    .engine
                    .read_peek(&atoms)
                    .map_err(|e| self.engine_err(e))?;
                if sampled {
                    self.explain(&atoms, &[canon_set(&rows)], "peek")?;
                }
                (rows.len(), !rows.is_empty())
            }
            ReadKind::Possible => {
                let families = self
                    .engine
                    .read_possible(&atoms, self.cfg.world_bound)
                    .map_err(|e| self.engine_err(e))?;
                if sampled {
                    let sets: Vec<CanonSet> = canon_family(&families).into_iter().collect();
                    self.explain(&atoms, &sets, "possible")?;
                }
                (families.len(), families.iter().any(|f| !f.is_empty()))
            }
            ReadKind::Collapse => unreachable!("collapse reads use read_collapse"),
        };
        let wr = self.wr_site(&user, observed_rows)?;
        self.hist.record(
            c,
            Event::Read {
                kind,
                user,
                answers,
                wr,
            },
        );
        Ok(())
    }

    /// Explainability: every answer (set) the engine returned must be the
    /// evaluation of some possible world over the currently pending
    /// transactions, independently enumerated from the extensional state.
    fn explain(
        &mut self,
        atoms: &[Atom],
        targets: &[CanonSet],
        what: &str,
    ) -> Result<(), Violation> {
        let ids = self.engine.pending_ids();
        let mut txns: Vec<&ResourceTransaction> = Vec::with_capacity(ids.len());
        for id in &ids {
            match self.txn_bodies.get(id) {
                Some(t) => txns.push(t),
                None => {
                    return Err(self.viol(
                        "model_desync",
                        format!("pending T{id} unknown to the driver model"),
                    ))
                }
            }
        }
        let bound = self.cfg.world_bound;
        let seed = self.seed;
        // Enumerate worlds and evaluate each with the checker's own
        // evaluator; any enumeration/evaluation failure (e.g. solver
        // budget) downgrades to a skip, never a violation.
        let verdict: Result<(Vec<CanonSet>, bool), String> = self.engine.with_db(|db| {
            let ws = enumerate_worlds_seeded(db, &txns, bound, seed).map_err(|e| e.to_string())?;
            let mut sets = Vec::with_capacity(ws.worlds.len());
            for w in &ws.worlds {
                let view = w.view(db).map_err(|e| e.to_string())?;
                let ans = eval_atoms(&view, atoms).map_err(|e| e.to_string())?;
                sets.push(canon_set(&ans));
            }
            Ok((sets, ws.truncated))
        });
        let (world_sets, truncated) = match verdict {
            Ok(v) => v,
            Err(_) => {
                self.stats.explain_skipped += 1;
                return Ok(());
            }
        };
        let all_found = targets.iter().all(|t| world_sets.contains(t));
        if all_found {
            self.stats.explain_checked += 1;
            Ok(())
        } else if truncated {
            self.stats.explain_skipped += 1;
            Ok(())
        } else {
            Err(self.viol(
                &format!("{what}_unexplainable"),
                format!(
                    "{} pending txns yield {} possible worlds, none explains the returned answer",
                    txns.len(),
                    world_sets.len()
                ),
            ))
        }
    }

    // -- invariants ---------------------------------------------------------

    fn check_invariants(&mut self) -> Result<(), Violation> {
        self.stats.invariant_checks += 1;
        let (committed, grounded, pending) = self.engine.accounting();
        if committed < grounded || committed - grounded != pending {
            return Err(self.viol(
                "accounting",
                format!("committed − grounded ≠ pending: {committed} − {grounded} ≠ {pending}"),
            ));
        }
        let offset = match self.cfg.mutation {
            Some(Mutation::OverstateCapacity) => 1usize,
            None => 0,
        };
        let capacity = self.capacity.clone();
        let problem = self
            .engine
            .with_db(|db| domain_check(db, &capacity, offset));
        if let Some(detail) = problem {
            return Err(self.viol("conservation", detail));
        }
        Ok(())
    }

    // -- epoch serializability ----------------------------------------------

    fn ser_check(&mut self) -> Result<(), Violation> {
        let image = self.engine.wal_image();
        let (records, _) =
            replay_bytes(&image).map_err(|e| self.viol("wal_unreadable", e.to_string()))?;
        let mut by_id: HashMap<TxnId, ResourceTransaction> = HashMap::new();
        for r in &records {
            if let LogRecord::PendingAdd { id, payload } = r {
                let txn = decode_transaction(payload)
                    .map_err(|e| self.viol("wal_undecodable", format!("T{id}: {e}")))?;
                by_id.insert(*id, txn);
            }
        }
        let mut recs: Vec<GroundedRec> = Vec::new();
        for r in &records[self.records_seen..] {
            match r {
                LogRecord::Ground { id, ops } => {
                    let txn = by_id.get(id).cloned();
                    if txn.is_none() {
                        return Err(self.viol(
                            "ground_without_commit",
                            format!("Ground record for T{id} with no PendingAdd in the log"),
                        ));
                    }
                    recs.push(GroundedRec {
                        id: Some(*id),
                        txn,
                        ops: ops.clone(),
                    });
                }
                LogRecord::Write(op) => recs.push(GroundedRec {
                    id: None,
                    txn: None,
                    ops: vec![op.clone()],
                }),
                _ => {}
            }
        }
        // Replay equivalence: base ⊕ epoch ops (WAL order) must equal the
        // engine's current extensional state.
        let mut replayed = self.epoch_base.clone();
        for rec in &recs {
            for op in &rec.ops {
                replayed
                    .apply(op)
                    .map_err(|e| self.viol("replay_error", e.to_string()))?;
            }
        }
        let expect = world_fingerprint(&replayed);
        let actual = self.engine.with_db(world_fingerprint);
        self.stats.replay_checks += 1;
        if expect != actual {
            return Err(self.viol(
                "replay_divergence",
                format!(
                    "epoch base + {} WAL records does not reproduce the engine state",
                    recs.len()
                ),
            ));
        }
        self.stats.ser_checks += 1;
        let (outcome, greedy) = check_serializable(&self.epoch_base, &recs, self.cfg.dfs_budget);
        match outcome {
            SerOutcome::Serializable { .. } => {
                if greedy {
                    self.stats.ser_greedy += 1;
                } else {
                    self.stats.ser_dfs += 1;
                }
            }
            SerOutcome::Inconclusive { .. } => self.stats.ser_inconclusive += 1,
            SerOutcome::Violation { detail } => {
                return Err(self.viol("not_serializable", detail));
            }
        }
        // Open the next epoch at the verified state.
        self.epoch_base = replayed;
        self.records_seen = records.len();
        Ok(())
    }

    // -- crash injection ----------------------------------------------------

    fn crash(&mut self) -> Result<(), Violation> {
        // Close the epoch first so the cut never spans an unchecked epoch.
        self.ser_check()?;
        let image = self.engine.wal_image();
        let cut = self.rng.gen_range(self.setup_bytes..image.len() + 1);
        let prefix = image[..cut].to_vec();
        let (records, _) =
            replay_bytes(&prefix).map_err(|e| self.viol("wal_unreadable", e.to_string()))?;
        // Independently rebuild the expected post-recovery state.
        let mut mdb = Database::new();
        let mut pending: BTreeMap<TxnId, ResourceTransaction> = BTreeMap::new();
        for r in &records {
            match r {
                LogRecord::CreateTable(schema) => {
                    mdb.create_table(schema.clone())
                        .map_err(|e| self.viol("replay_error", e.to_string()))?;
                }
                LogRecord::CreateIndex { .. } | LogRecord::Checkpoint => {}
                LogRecord::Write(op) => {
                    mdb.apply(op)
                        .map_err(|e| self.viol("replay_error", e.to_string()))?;
                }
                LogRecord::PendingAdd { id, payload } => {
                    let txn = decode_transaction(payload)
                        .map_err(|e| self.viol("wal_undecodable", format!("T{id}: {e}")))?;
                    pending.insert(*id, txn);
                }
                LogRecord::PendingRemove { id } => {
                    pending.remove(id);
                }
                LogRecord::Ground { id, ops } => {
                    pending.remove(id);
                    for op in ops {
                        mdb.apply(op)
                            .map_err(|e| self.viol("replay_error", e.to_string()))?;
                    }
                }
            }
        }
        let survivors = pending.len();
        let engine = Engine::recover(self.cfg.engine, prefix, self.qcfg.clone()).map_err(|e| {
            self.viol(
                "recovery_failed",
                format!("cut at byte {cut} of {}: {e}", image.len()),
            )
        })?;
        self.stats.recovery_checks += 1;
        let got_ids = engine.pending_ids();
        let want_ids: Vec<TxnId> = pending.keys().copied().collect();
        if got_ids != want_ids {
            return Err(self.viol(
                "recovery_pending_mismatch",
                format!("recovered pending {got_ids:?}, WAL prefix implies {want_ids:?}"),
            ));
        }
        let got_fp = engine.with_db(world_fingerprint);
        if got_fp != world_fingerprint(&mdb) {
            return Err(self.viol(
                "recovery_state_mismatch",
                format!("recovered extensional state diverges from WAL prefix replay (cut {cut})"),
            ));
        }
        // Adopt the recovered engine and rebaseline the checker model.
        self.engine = engine;
        self.crashes += 1;
        self.capacity = self
            .cfg
            .flights
            .flight_numbers()
            .map(|f| (f, count_flight_rows(&mdb, f)))
            .collect();
        self.audit_live = mdb
            .table("Audit")
            .map(|t| {
                let mut tags: Vec<i64> = t.iter().filter_map(|r| r.get(0)?.as_int()).collect();
                tags.sort_unstable();
                tags
            })
            .unwrap_or_default();
        self.booked = {
            let mut booked: Vec<(String, i64)> = mdb
                .table("Bookings")
                .map(|t| {
                    t.iter()
                        .filter_map(|r| {
                            Some((r.get(0)?.as_str()?.to_string(), r.get(1)?.as_int()?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            for txn in pending.values() {
                if let Some(uf) = booking_user_flight(txn) {
                    booked.push(uf);
                }
            }
            booked
        };
        self.txn_bodies = pending.into_iter().collect();
        self.epoch_base = mdb;
        self.records_seen = records.len();
        self.hist.record(
            self.cfg.clients,
            Event::Crash {
                cut,
                wal_len: image.len(),
                survivors,
            },
        );
        Ok(())
    }

    fn finish(self, violation: Option<Violation>) -> RunResult {
        let fingerprint = self.engine.with_db(world_fingerprint);
        let mut digest = self.hist.digest();
        for b in fingerprint.as_bytes() {
            digest ^= u64::from(*b);
            digest = digest.wrapping_mul(0x1000_0000_01b3);
        }
        let obs_events = self.engine.events(crate::artifact::TAIL_EVENTS);
        RunResult {
            seed: self.seed,
            engine: self.cfg.engine.label(),
            ops: self.op_index,
            commits: self.commits,
            aborts: self.aborts,
            crashes: self.crashes,
            stats: self.stats,
            violation,
            fingerprint,
            digest,
            history: self.hist,
            obs_events,
        }
    }
}

/// Per-flight `Available` + `Bookings` row count (the conserved quantity).
fn count_flight_rows(db: &Database, flight: i64) -> usize {
    let count = |rel: &str, col: usize| {
        db.table(rel)
            .map(|t| {
                t.iter()
                    .filter(|r| r.get(col).and_then(|v| v.as_int()) == Some(flight))
                    .count()
            })
            .unwrap_or(0)
    };
    count("Available", 0) + count("Bookings", 1)
}

/// Domain invariants over the extensional state: seat conservation per
/// flight, no double-booked seat, no double-booked user, no seat both
/// available and booked.
fn domain_check(db: &Database, capacity: &BTreeMap<i64, usize>, offset: usize) -> Option<String> {
    let mut seen_seats: BTreeSet<(i64, String)> = BTreeSet::new();
    let mut seen_users: BTreeSet<String> = BTreeSet::new();
    if let Ok(t) = db.table("Bookings") {
        for row in t.iter() {
            let user = row.get(0)?.as_str()?.to_string();
            let flight = row.get(1)?.as_int()?;
            let seat = row.get(2)?.as_str()?.to_string();
            if !seen_seats.insert((flight, seat.clone())) {
                return Some(format!("seat {seat} on flight {flight} double-booked"));
            }
            if !seen_users.insert(user.clone()) {
                return Some(format!("user {user} holds more than one booking"));
            }
            if db.contains("Available", &tuple![flight, seat.as_str()]) {
                return Some(format!(
                    "seat {seat} on flight {flight} is both available and booked"
                ));
            }
        }
    }
    for (flight, cap) in capacity {
        let have = count_flight_rows(db, *flight);
        if have != cap + offset {
            return Some(format!(
                "flight {flight}: |Available| + |Bookings| = {have}, expected {}",
                cap + offset
            ));
        }
    }
    None
}

/// Execute one seeded run against the configured engine and return the
/// full result (the run never panics on a violation — it stops and
/// reports).
pub fn run_seed(seed: u64, cfg: &SimConfig) -> RunResult {
    match Driver::new(seed, cfg) {
        Ok(mut d) => {
            let violation = d.drive().err();
            d.finish(violation)
        }
        Err(v) => RunResult {
            seed,
            engine: cfg.engine.label(),
            ops: 0,
            commits: 0,
            aborts: 0,
            crashes: 0,
            stats: CheckStats::default(),
            violation: Some(v),
            fingerprint: String::new(),
            digest: 0,
            history: History::new(cfg.clients),
            obs_events: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(engine: EngineKind) -> SimConfig {
        SimConfig {
            clients: 3,
            ops_per_client: 60,
            crash_count: 1,
            ser_interval: 40,
            ..SimConfig::smoke(engine)
        }
    }

    #[test]
    fn same_seed_same_run() {
        for engine in [EngineKind::Single, EngineKind::Sharded] {
            let cfg = tiny(engine);
            let a = run_seed(11, &cfg);
            let b = run_seed(11, &cfg);
            assert!(
                a.violation.is_none(),
                "unexpected violation: {:?}",
                a.violation
            );
            assert_eq!(a.digest, b.digest, "{engine:?} run is not deterministic");
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.commits, b.commits);
            assert_eq!(a.history.len(), b.history.len());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = tiny(EngineKind::Single);
        let a = run_seed(1, &cfg);
        let b = run_seed(2, &cfg);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn clean_runs_have_no_violations_and_exercise_the_checkers() {
        for engine in [EngineKind::Single, EngineKind::Sharded] {
            let cfg = tiny(engine);
            for seed in [3, 4, 5] {
                let r = run_seed(seed, &cfg);
                assert!(
                    r.violation.is_none(),
                    "{engine:?} seed {seed}: {:?}\ntail:\n{}",
                    r.violation,
                    r.history.tail_lines(20).join("\n")
                );
                assert_eq!(r.ops, cfg.total_ops() as u64);
                assert!(r.stats.ser_checks > 0);
                assert!(r.stats.invariant_checks >= r.ops);
                assert!(r.crashes >= 1, "{engine:?} seed {seed}: no crash injected");
            }
        }
    }

    #[test]
    fn mutation_induces_a_violation() {
        let cfg = SimConfig {
            mutation: Some(Mutation::OverstateCapacity),
            ..tiny(EngineKind::Single)
        };
        let r = run_seed(7, &cfg);
        let v = r.violation.expect("overstated capacity must be caught");
        assert_eq!(v.kind, "conservation");
    }
}
