//! The deterministic full-system driver.
//!
//! A run is a **pure function of its `u64` seed**: the seed fixes the
//! per-client statement streams ([`qdb_workload::build_client_streams`]),
//! the virtual scheduler's interleaving, the crash cut points, and —
//! via [`qdb_core::QuantumDbConfig::seed`] — every nondeterministic
//! choice point inside the engine itself (solver tie-breaks, world
//! enumeration order). Two runs with the same seed and config produce
//! bit-identical histories, final states and checker verdicts, which is
//! what makes `sim replay --seed <s>` a faithful reproduction of any
//! failure.
//!
//! The driver interleaves N logical clients over one of three engine
//! builds (`QuantumDb` single-threaded core, the sharded
//! [`qdb_core::SharedQuantumDb`], or a full `qdb-server` behind loopback
//! TCP with one [`qdb_client::Connection`] per client), records every
//! statement into a [`History`], and runs the black-box checks of
//! [`crate::checker`] after every transition (invariants), at epoch
//! boundaries (serializability + replay equivalence) and on sampled
//! uncertain reads (explainability). Crash injection cuts the WAL image
//! at an arbitrary byte offset (optionally corrupting it through a
//! [`qdb_storage::FaultSink`]), restarts the engine from the prefix via
//! [`qdb_core::QuantumDb::recover`], and verifies the recovered state
//! against an independently replayed model before resuming the workload.
//!
//! Every executed step is also recorded as a [`TraceEntry`], so a run
//! can be replayed op-for-op via [`run_trace`] — the substrate the
//! schedule shrinker ([`crate::shrink`]) delta-debugs over.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use qdb_client::{Connection, RemotePrepared};
use qdb_core::{
    enumerate_worlds_seeded, world_fingerprint, QuantumDb, QuantumDbConfig, Response,
    SharedQuantumDb, SubmitOutcome, TxnId,
};
use qdb_logic::codec::decode_transaction;
use qdb_logic::{parse_query, Atom, ResourceTransaction, Term, UpdateKind, Valuation};
use qdb_server::{Server, ServerHandle};
use qdb_storage::wal::{apply_faults, frame_spans, replay_bytes, FaultSink, MemorySink, SinkFault};
use qdb_storage::{
    tuple, Database, DeltaView, LogRecord, LogSink, Schema, Value, ValueType, Wal, WriteOp,
};
use qdb_workload::entangled::{entangled_booking, solo_booking};
use qdb_workload::rng::StdRng;
use qdb_workload::{build_client_streams, FlightsConfig, SimOp, StreamProfile};

use crate::checker::{
    canon_family, canon_set, check_serializable, eval_atoms, CanonSet, CheckStats, GroundedRec,
    SerOutcome, Violation,
};
use crate::history::{Event, History, ReadKind, Site};

/// Which engine build a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded [`QuantumDb`] core.
    Single,
    /// The partition-parallel [`SharedQuantumDb`].
    Sharded,
    /// A full `qdb-server` process behind loopback TCP: every client is a
    /// [`qdb_client::Connection`] issuing SQL, so the run black-box-checks
    /// server dispatch, per-session prepared/bound state, frame
    /// round-tripping and pipelined response ordering too. Determinism is
    /// preserved because the virtual scheduler keeps at most one statement
    /// in flight.
    Wire,
}

impl EngineKind {
    /// Stable label (used in reports and artifact file names).
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Single => "single",
            EngineKind::Sharded => "sharded",
            EngineKind::Wire => "wire",
        }
    }

    /// Parse a label back.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "single" => Some(EngineKind::Single),
            "sharded" => Some(EngineKind::Sharded),
            "wire" => Some(EngineKind::Wire),
            _ => None,
        }
    }
}

/// Mutations for mutation-testing the harness itself: each one makes a
/// healthy engine run produce a violation — proving the corresponding
/// invariant is actually armed. [`Mutation::OverstateCapacity`] corrupts
/// the *checker's model*; the WAL mutations corrupt the byte stream a
/// crashed engine recovers from (through a [`qdb_storage::FaultSink`])
/// while the checker keeps replaying the pristine prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Overstate every flight's expected capacity by one seat, breaking
    /// the conservation invariant `|Available(f)| + |Bookings(f)| =
    /// capacity(f)`.
    OverstateCapacity,
    /// Flip a seeded byte *mid-log* (never inside the setup prefix) before
    /// crash recovery. Replay must stop at that frame boundary, so the
    /// recovered engine diverges from the pristine-prefix model.
    CorruptWalByte,
    /// Drop a seeded run of whole frames mid-log before crash recovery —
    /// a buffered group flush that never reached the media while later
    /// writes did.
    DropGroupFlush,
}

impl Mutation {
    /// Every registered mutation. The meta-test iterates this, so a
    /// mutation that silently never fires the checker fails CI, and
    /// `--mutate` help text is generated from it.
    pub fn all() -> [Mutation; 3] {
        [
            Mutation::OverstateCapacity,
            Mutation::CorruptWalByte,
            Mutation::DropGroupFlush,
        ]
    }

    /// Stable name (artifact field).
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::OverstateCapacity => "overstate_capacity",
            Mutation::CorruptWalByte => "corrupt_wal_byte",
            Mutation::DropGroupFlush => "drop_group_flush",
        }
    }

    /// Parse a stable name back.
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::all().into_iter().find(|m| m.name() == s)
    }
}

/// One replayable step of a run: either a client statement or a crash
/// with its exact cut point and (optional) injected WAL fault. A run's
/// recorded trace replayed through [`run_trace`] reproduces the run
/// without consulting the scheduler RNG — which is what lets the
/// shrinker drop entries while keeping every surviving step identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// Client `client` executed `op`.
    Op {
        /// Logical client index.
        client: usize,
        /// The statement.
        op: SimOp,
    },
    /// Crash/recovery at WAL byte offset `cut`, with an optional injected
    /// fault (offsets are absolute into the pre-crash image).
    Crash {
        /// Byte offset the WAL image was cut at.
        cut: u64,
        /// Injected WAL-level fault, if a WAL mutation was active.
        fault: Option<SinkFault>,
    },
}

impl TraceEntry {
    /// Compact single-line encoding (artifact `trace` array element).
    pub fn render(&self) -> String {
        match self {
            TraceEntry::Op { client, op } => {
                let body = match op {
                    SimOp::Book { flight } => format!("book {flight}"),
                    SimOp::BookEntangled { flight, partner } => format!("book2 {flight} {partner}"),
                    SimOp::Read { target } => format!("read {target}"),
                    SimOp::Peek { target } => format!("peek {target}"),
                    SimOp::Possible { target } => format!("possible {target}"),
                    SimOp::Ground { nth } => format!("ground {nth}"),
                    SimOp::GroundAll => "groundall".to_string(),
                    SimOp::Checkpoint => "checkpoint".to_string(),
                    SimOp::AuditInsert => "audit_ins".to_string(),
                    SimOp::AuditDelete { nth } => format!("audit_del {nth}"),
                    SimOp::SeatAdd { flight } => format!("seat_add {flight}"),
                    SimOp::SeatRemove { flight, nth } => format!("seat_rm {flight} {nth}"),
                };
                format!("{client} {body}")
            }
            TraceEntry::Crash { cut, fault } => match fault {
                None => format!("crash {cut}"),
                Some(SinkFault::FlipByte { offset }) => format!("crash {cut} flip {offset}"),
                Some(SinkFault::DropRange { offset, len }) => {
                    format!("crash {cut} drop {offset} {len}")
                }
            },
        }
    }

    /// Parse the [`TraceEntry::render`] encoding back.
    pub fn parse(s: &str) -> Option<TraceEntry> {
        let parts: Vec<&str> = s.split_whitespace().collect();
        let num = |i: usize| parts.get(i)?.parse::<u64>().ok();
        if parts.first() == Some(&"crash") {
            let cut = num(1)?;
            let fault = match parts.get(2).copied() {
                None => None,
                Some("flip") => Some(SinkFault::FlipByte { offset: num(3)? }),
                Some("drop") => Some(SinkFault::DropRange {
                    offset: num(3)?,
                    len: num(4)?,
                }),
                Some(_) => return None,
            };
            return Some(TraceEntry::Crash { cut, fault });
        }
        let client = parts.first()?.parse::<usize>().ok()?;
        let arg = |i: usize| parts.get(i)?.parse::<usize>().ok();
        let op = match *parts.get(1)? {
            "book" => SimOp::Book { flight: arg(2)? },
            "book2" => SimOp::BookEntangled {
                flight: arg(2)?,
                partner: arg(3)?,
            },
            "read" => SimOp::Read { target: arg(2)? },
            "peek" => SimOp::Peek { target: arg(2)? },
            "possible" => SimOp::Possible { target: arg(2)? },
            "ground" => SimOp::Ground { nth: arg(2)? },
            "groundall" => SimOp::GroundAll,
            "checkpoint" => SimOp::Checkpoint,
            "audit_ins" => SimOp::AuditInsert,
            "audit_del" => SimOp::AuditDelete { nth: arg(2)? },
            "seat_add" => SimOp::SeatAdd { flight: arg(2)? },
            "seat_rm" => SimOp::SeatRemove {
                flight: arg(2)?,
                nth: arg(3)?,
            },
            _ => return None,
        };
        Some(TraceEntry::Op { client, op })
    }
}

/// Full simulation configuration. Together with the seed this determines
/// a run completely.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Engine build under test.
    pub engine: EngineKind,
    /// Logical client sessions.
    pub clients: usize,
    /// Statements per client.
    pub ops_per_client: usize,
    /// Flight database shape.
    pub flights: FlightsConfig,
    /// Engine `k` bound (small values force frequent grounding).
    pub k: usize,
    /// Inject crash/restart cycles?
    pub crash: bool,
    /// How many crash points per run (when `crash` is on).
    pub crash_count: usize,
    /// World-enumeration bound for POSSIBLE reads and explainability.
    pub world_bound: usize,
    /// Check every n-th PEEK/POSSIBLE for explainability (`0` = never).
    pub explain_sample: u64,
    /// Serializability-check cadence in ops (`0` = only at crashes and
    /// run end).
    pub ser_interval: u64,
    /// Node budget for the serializability DFS fallback.
    pub dfs_budget: usize,
    /// Statement mix.
    pub profile: StreamProfile,
    /// Optional checker mutation (see [`Mutation`]).
    pub mutation: Option<Mutation>,
}

impl SimConfig {
    /// The CI smoke scale: 4 clients × 250 ops over a 3-flight database
    /// with a tight `k`, crash injection on.
    pub fn smoke(engine: EngineKind) -> SimConfig {
        SimConfig {
            engine,
            clients: 4,
            ops_per_client: 250,
            flights: FlightsConfig {
                flights: 3,
                rows_per_flight: 6,
            },
            k: 5,
            crash: true,
            crash_count: 2,
            world_bound: 64,
            explain_sample: 5,
            ser_interval: 100,
            dfs_budget: 30_000,
            profile: StreamProfile::default(),
            mutation: None,
        }
    }

    /// Total statements a run executes.
    pub fn total_ops(&self) -> usize {
        self.clients * self.ops_per_client
    }

    /// The engine configuration a run uses (the run seed is threaded into
    /// every engine choice point).
    pub fn quantum_config(&self, seed: u64) -> QuantumDbConfig {
        QuantumDbConfig {
            k: self.k,
            seed,
            ..QuantumDbConfig::default()
        }
    }

    fn flight_num(&self, idx: usize) -> i64 {
        (idx % self.flights.flights.max(1)) as i64 + 1
    }
}

/// Outcome of one seeded run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The seed.
    pub seed: u64,
    /// Engine label.
    pub engine: &'static str,
    /// Statements executed before the run ended (or failed).
    pub ops: u64,
    /// Committed CHOOSE submissions.
    pub commits: u64,
    /// Aborted CHOOSE submissions.
    pub aborts: u64,
    /// Injected crash/restart cycles survived.
    pub crashes: u64,
    /// Checker counters.
    pub stats: CheckStats,
    /// The first violation, if the checker found one.
    pub violation: Option<Violation>,
    /// Final extensional-state fingerprint.
    pub fingerprint: String,
    /// Stable digest of history + final state (determinism witness).
    pub digest: u64,
    /// The full recorded history.
    pub history: History,
    /// The engine's most recent flight-recorder events at run end (the
    /// failure artifact embeds them as diagnostic context; they never
    /// feed the determinism digest — span timings are wall-clock).
    pub obs_events: Vec<qdb_core::SpanEvent>,
    /// Every executed step, replayable via [`run_trace`] (the shrinker's
    /// input; embedded in `qdb-sim-failure-v3` artifacts).
    pub trace: Vec<TraceEntry>,
}

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

/// The wire harness: an in-process `qdb-server` over loopback TCP, one
/// [`Connection`] per logical client, plus a retained [`SharedQuantumDb`]
/// handle the *checker* probes directly (WAL image, pending ids,
/// metrics) — probes are not client traffic, so they stay off the wire.
struct WireEngine {
    server: ServerHandle,
    shared: SharedQuantumDb,
    conns: Vec<Connection>,
    reads: Vec<WireReads>,
}

/// Per-connection prepared read statements, exercising the server's
/// per-session prepared/bound maps on every read.
struct WireReads {
    collapse: RemotePrepared,
    peek: RemotePrepared,
    possible: RemotePrepared,
}

/// Worker threads for the in-process server. More than one is safe: the
/// virtual scheduler keeps at most one statement in flight, so workers
/// never race on statement order.
const WIRE_WORKERS: usize = 2;

impl WireEngine {
    fn start(shared: SharedQuantumDb, clients: usize, world_bound: usize) -> Result<Self, String> {
        let server = Server::spawn_with_db("127.0.0.1:0", WIRE_WORKERS, shared.clone())
            .map_err(|e| format!("spawn sim server: {e}"))?;
        let mut conns = Vec::with_capacity(clients);
        let mut reads = Vec::with_capacity(clients);
        for c in 0..clients {
            let mut conn = Connection::connect(server.addr())
                .map_err(|e| format!("client {c} connect: {e}"))?;
            let prep = |conn: &mut Connection, sql: &str| {
                conn.prepare(sql)
                    .map_err(|e| format!("client {c} prepare {sql:?}: {e}"))
            };
            let collapse = prep(&mut conn, "SELECT * FROM Bookings(?, @f, @s)")?;
            let peek = prep(&mut conn, "SELECT PEEK * FROM Bookings(?, @f, @s)")?;
            let possible = prep(
                &mut conn,
                &format!("SELECT POSSIBLE * FROM Bookings(?, @f, @s) LIMIT {world_bound}"),
            )?;
            conns.push(conn);
            reads.push(WireReads {
                collapse,
                peek,
                possible,
            });
        }
        Ok(WireEngine {
            server,
            shared,
            conns,
            reads,
        })
    }

    fn execute(&mut self, c: usize, sql: &str) -> Result<Response, String> {
        self.conns[c]
            .execute(sql)
            .map_err(|e| format!("wire {sql:?}: {e}"))
    }

    /// `BIND` + `RUN` pipelined in one round trip against the prepared
    /// statement for `kind`, with the target user as the sole parameter.
    fn read(&mut self, c: usize, kind: ReadKind, user: &str) -> Result<Response, String> {
        let prepared = match kind {
            ReadKind::Collapse => &self.reads[c].collapse,
            ReadKind::Peek => &self.reads[c].peek,
            ReadKind::Possible => &self.reads[c].possible,
        };
        self.conns[c]
            .bind_run(prepared, &[Value::from(user)])
            .map_err(|e| format!("wire {kind} {user}: {e}"))
    }
}

impl std::fmt::Debug for WireEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireEngine")
            .field("addr", &self.server.addr())
            .field("clients", &self.conns.len())
            .finish()
    }
}

enum Engine {
    Single(Box<QuantumDb>),
    Sharded(SharedQuantumDb),
    Wire(Box<WireEngine>),
}

/// Render a blind write as the SQL the wire engine sends.
fn write_sql(op: &WriteOp) -> String {
    let (verb, relation, tuple) = match op {
        WriteOp::Insert { relation, tuple } => ("INSERT INTO", relation, tuple),
        WriteOp::Delete { relation, tuple } => ("DELETE FROM", relation, tuple),
    };
    let vals: Vec<String> = tuple
        .iter()
        .map(|v| match v.as_int() {
            Some(i) => i.to_string(),
            None => format!("'{}'", v.as_str().unwrap_or_default()),
        })
        .collect();
    format!("{verb} {relation} VALUES ({})", vals.join(", "))
}

/// The booking statement in the SQL dialect — shaped so that parsing it
/// yields a [`ResourceTransaction`] *identical* (variable ids included)
/// to [`solo_booking`]/[`entangled_booking`]: same update order, same
/// body-atom order, same first-appearance order of `s` and `s2`. A
/// pinned test asserts the equality, which is what makes wire runs
/// digest-equal to embedded runs.
fn booking_sql(user: &str, partner: Option<&str>, flight: i64) -> String {
    let tail = format!(
        "CHOOSE 1 FOLLOWED BY (DELETE ({flight}, @s) FROM Available; \
         INSERT ('{user}', {flight}, @s) INTO Bookings)"
    );
    match partner {
        None => format!("SELECT @s FROM Available({flight}, @s) {tail}"),
        Some(p) => format!(
            "SELECT @s FROM Available({flight}, @s), \
             OPTIONAL Bookings('{p}', {flight}, @s2), OPTIONAL Adjacent(@s, @s2) {tail}"
        ),
    }
}

impl Engine {
    fn build(cfg: &SimConfig, qcfg: QuantumDbConfig) -> Result<Engine, String> {
        let mut qdb = QuantumDb::new(qcfg).map_err(|e| e.to_string())?;
        qdb_workload::flights::install(&mut qdb, &cfg.flights).map_err(|e| e.to_string())?;
        qdb.create_table(audit_schema())
            .map_err(|e| e.to_string())?;
        Engine::wrap(cfg, qdb)
    }

    fn recover(
        cfg: &SimConfig,
        image: Vec<u8>,
        qcfg: QuantumDbConfig,
        faults: &[SinkFault],
    ) -> Result<Engine, String> {
        let inner: Box<dyn LogSink> = Box::new(MemorySink::from_bytes(image));
        let sink: Box<dyn LogSink> = if faults.is_empty() {
            inner
        } else {
            Box::new(FaultSink::new(inner, faults.to_vec()))
        };
        let qdb = QuantumDb::recover(Wal::with_sink(sink), qcfg).map_err(|e| e.to_string())?;
        Engine::wrap(cfg, qdb)
    }

    fn wrap(cfg: &SimConfig, qdb: QuantumDb) -> Result<Engine, String> {
        Ok(match cfg.engine {
            EngineKind::Single => Engine::Single(Box::new(qdb)),
            EngineKind::Sharded => Engine::Sharded(qdb.into_shared()),
            EngineKind::Wire => Engine::Wire(Box::new(WireEngine::start(
                qdb.into_shared(),
                cfg.clients,
                cfg.world_bound,
            )?)),
        })
    }

    /// Run one driver-level operation inside a flight-recorder span. The
    /// embedded builds drive the engine API directly (no statement
    /// layer), so without this the event ring would stay empty; the
    /// class names match `Statement::kind()` so artifact events read
    /// like statements. The wire build skips this — the server brackets
    /// every statement itself. Timings are wall-clock and never feed
    /// the determinism digest.
    fn record<R>(
        &mut self,
        class: &'static str,
        run: impl FnOnce(&mut Self) -> Result<R, String>,
        outcome: impl FnOnce(&R) -> qdb_core::Outcome,
    ) -> Result<R, String> {
        if matches!(self, Engine::Wire(_)) {
            return run(self);
        }
        let obs = self.obs().clone();
        let token = obs.begin_op(class);
        let r = run(self);
        let o = match &r {
            Ok(v) => outcome(v),
            Err(_) => qdb_core::Outcome::Error,
        };
        obs.finish_op(token, o, None);
        r
    }

    fn submit(
        &mut self,
        c: usize,
        txn: &ResourceTransaction,
        sql: &str,
    ) -> Result<SubmitOutcome, String> {
        self.record(
            "SELECT … CHOOSE 1",
            |e| match e {
                Engine::Single(q) => q.submit(txn).map_err(|e| e.to_string()),
                Engine::Sharded(s) => s.submit(txn).map_err(|e| e.to_string()),
                Engine::Wire(w) => match w.execute(c, sql)? {
                    Response::Committed(id) => Ok(SubmitOutcome::Committed { id }),
                    Response::Aborted => Ok(SubmitOutcome::Aborted),
                    other => Err(format!("CHOOSE over wire returned {other:?}")),
                },
            },
            |o| {
                if o.is_committed() {
                    qdb_core::Outcome::Ok
                } else {
                    qdb_core::Outcome::Aborted
                }
            },
        )
    }

    fn read(&mut self, c: usize, user: &str, atoms: &[Atom]) -> Result<Vec<Valuation>, String> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read(atoms, None).map_err(|e| e.to_string()),
                Engine::Sharded(s) => s.read(atoms, None).map_err(|e| e.to_string()),
                Engine::Wire(w) => match w.read(c, ReadKind::Collapse, user)? {
                    Response::Rows(rows) => Ok(rows),
                    other => Err(format!("SELECT over wire returned {other:?}")),
                },
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn read_peek(
        &mut self,
        c: usize,
        user: &str,
        atoms: &[Atom],
    ) -> Result<Vec<Valuation>, String> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read_peek(atoms, None).map_err(|e| e.to_string()),
                Engine::Sharded(s) => s.read_peek(atoms, None).map_err(|e| e.to_string()),
                Engine::Wire(w) => match w.read(c, ReadKind::Peek, user)? {
                    Response::Rows(rows) => Ok(rows),
                    other => Err(format!("SELECT PEEK over wire returned {other:?}")),
                },
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn read_possible(
        &mut self,
        c: usize,
        user: &str,
        atoms: &[Atom],
        bound: usize,
    ) -> Result<Vec<Vec<Valuation>>, String> {
        self.record(
            "SELECT",
            |e| match e {
                Engine::Single(q) => q.read_possible(atoms, bound).map_err(|e| e.to_string()),
                Engine::Sharded(s) => s.read_possible(atoms, bound).map_err(|e| e.to_string()),
                Engine::Wire(w) => match w.read(c, ReadKind::Possible, user)? {
                    Response::Worlds(worlds) => Ok(worlds),
                    other => Err(format!("SELECT POSSIBLE over wire returned {other:?}")),
                },
            },
            |_| qdb_core::Outcome::Ok,
        )
    }

    fn write(&mut self, c: usize, op: WriteOp) -> Result<bool, String> {
        match self {
            Engine::Single(q) => q.write(op).map_err(|e| e.to_string()),
            Engine::Sharded(s) => s.write(op).map_err(|e| e.to_string()),
            Engine::Wire(w) => match w.execute(c, &write_sql(&op))? {
                Response::Written(applied) => Ok(applied),
                other => Err(format!("blind write over wire returned {other:?}")),
            },
        }
    }

    fn ground(&mut self, c: usize, id: TxnId) -> Result<bool, String> {
        match self {
            Engine::Single(q) => q.ground(id).map_err(|e| e.to_string()),
            Engine::Sharded(s) => s.ground(id).map_err(|e| e.to_string()),
            Engine::Wire(w) => match w.execute(c, &format!("GROUND {id}"))? {
                Response::Grounded(n) => Ok(n > 0),
                other => Err(format!("GROUND over wire returned {other:?}")),
            },
        }
    }

    fn ground_all(&mut self, c: usize) -> Result<(), String> {
        match self {
            Engine::Single(q) => q.ground_all().map_err(|e| e.to_string()),
            Engine::Sharded(s) => s.ground_all().map_err(|e| e.to_string()),
            Engine::Wire(w) => match w.execute(c, "GROUND ALL")? {
                Response::Grounded(_) => Ok(()),
                other => Err(format!("GROUND ALL over wire returned {other:?}")),
            },
        }
    }

    fn checkpoint(&mut self, c: usize) -> Result<(), String> {
        match self {
            Engine::Single(q) => q.checkpoint().map_err(|e| e.to_string()),
            Engine::Sharded(s) => s.checkpoint().map_err(|e| e.to_string()),
            Engine::Wire(w) => match w.execute(c, "CHECKPOINT")? {
                Response::Ack => Ok(()),
                other => Err(format!("CHECKPOINT over wire returned {other:?}")),
            },
        }
    }

    fn pending_ids(&self) -> Vec<TxnId> {
        match self {
            Engine::Single(q) => q.pending_ids(),
            Engine::Sharded(s) => s.pending_ids(),
            Engine::Wire(w) => w.shared.pending_ids(),
        }
    }

    fn wal_image(&mut self) -> Vec<u8> {
        match self {
            Engine::Single(q) => q.wal_image(),
            Engine::Sharded(s) => s.wal_image(),
            Engine::Wire(w) => w.shared.wal_image(),
        }
    }

    fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        match self {
            Engine::Single(q) => f(q.database()),
            Engine::Sharded(s) => s.with_database(f),
            Engine::Wire(w) => w.shared.with_database(f),
        }
    }

    /// The engine's observability handle.
    fn obs(&self) -> &std::sync::Arc<qdb_core::Obs> {
        match self {
            Engine::Single(q) => q.obs(),
            Engine::Sharded(s) => s.obs(),
            Engine::Wire(w) => w.shared.obs(),
        }
    }

    /// The most recent `limit` flight-recorder events, oldest first.
    fn events(&self, limit: usize) -> Vec<qdb_core::SpanEvent> {
        self.obs().events(limit)
    }

    /// `(committed, grounded, pending)` — read together so the §2
    /// accounting identity can be checked atomically.
    fn accounting(&self) -> (u64, u64, u64) {
        match self {
            Engine::Single(q) => {
                let m = q.metrics();
                (m.committed, m.grounded_total(), q.pending_count() as u64)
            }
            Engine::Sharded(s) => {
                let (m, pending) = s.metrics_with_pending();
                (m.committed, m.grounded_total(), pending)
            }
            Engine::Wire(w) => {
                let (m, pending) = w.shared.metrics_with_pending();
                (m.committed, m.grounded_total(), pending)
            }
        }
    }
}

fn audit_schema() -> Schema {
    Schema::new("Audit", vec![("tag", ValueType::Int)])
}

fn booking_atoms(user: &str) -> Vec<Atom> {
    parse_query(&format!("Bookings('{user}', f, s)"))
        .expect("generated booking query is well-formed")
        .atoms
}

/// The `(user, flight)` a pending booking transaction would create, read
/// off its `+Bookings(...)` update atom.
fn booking_user_flight(txn: &ResourceTransaction) -> Option<(String, i64)> {
    for u in &txn.updates {
        if u.kind == UpdateKind::Insert && u.atom.relation.as_ref() == "Bookings" {
            let user = match u.atom.terms.first()? {
                Term::Const(v) => v.as_str()?.to_string(),
                Term::Var(_) => return None,
            };
            let flight = match u.atom.terms.get(1)? {
                Term::Const(v) => v.as_int()?,
                Term::Var(_) => return None,
            };
            return Some((user, flight));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Driver {
    cfg: SimConfig,
    seed: u64,
    qcfg: QuantumDbConfig,
    engine: Engine,
    hist: History,
    rng: StdRng,
    stats: CheckStats,
    op_index: u64,
    commits: u64,
    aborts: u64,
    crashes: u64,
    uncertain_reads: u64,
    // Checker model (rebuilt from the WAL prefix after every crash).
    capacity: BTreeMap<i64, usize>,
    audit_live: Vec<i64>,
    txn_bodies: HashMap<TxnId, ResourceTransaction>,
    booked: Vec<(String, i64)>,
    user_sites: HashMap<String, Site>,
    next_user: u64,
    next_audit: i64,
    next_seat: u64,
    epoch_base: Database,
    records_seen: usize,
    /// WAL bytes covering schema install + initial bulk load; crash cuts
    /// never land inside this prefix (setup is synced before traffic).
    setup_bytes: usize,
    /// Every executed step, in order (see [`TraceEntry`]).
    trace: Vec<TraceEntry>,
}

impl Driver {
    fn new(seed: u64, cfg: &SimConfig) -> Result<Driver, Violation> {
        let qcfg = cfg.quantum_config(seed);
        let engine = Engine::build(cfg, qcfg.clone()).map_err(|e| Violation {
            kind: "setup".into(),
            detail: e,
            op_index: 0,
        })?;
        let mut d = Driver {
            cfg: cfg.clone(),
            seed,
            qcfg,
            engine,
            hist: History::new(cfg.clients),
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_5EED_5EED_5EED),
            stats: CheckStats::default(),
            op_index: 0,
            commits: 0,
            aborts: 0,
            crashes: 0,
            uncertain_reads: 0,
            capacity: BTreeMap::new(),
            audit_live: Vec::new(),
            txn_bodies: HashMap::new(),
            booked: Vec::new(),
            user_sites: HashMap::new(),
            next_user: 0,
            next_audit: 0,
            next_seat: 0,
            epoch_base: Database::new(),
            records_seen: 0,
            setup_bytes: 0,
            trace: Vec::new(),
        };
        for f in cfg.flights.flight_numbers() {
            d.capacity.insert(f, cfg.flights.seats_per_flight());
        }
        // Baseline the first epoch on the freshly installed state.
        let image = d.engine.wal_image();
        let (records, _) = replay_bytes(&image)
            .map_err(|e| d.viol("setup", format!("initial WAL unreadable: {e}")))?;
        d.records_seen = records.len();
        d.setup_bytes = image.len();
        d.epoch_base = d.engine.with_db(Database::clone);
        Ok(d)
    }

    fn viol(&self, kind: &str, detail: String) -> Violation {
        Violation {
            kind: kind.to_string(),
            detail,
            op_index: self.op_index,
        }
    }

    fn engine_err(&self, e: String) -> Violation {
        self.viol("engine_error", e)
    }

    fn drive(&mut self) -> Result<(), Violation> {
        let streams = build_client_streams(
            &self.cfg.flights,
            self.cfg.clients,
            self.cfg.ops_per_client,
            self.seed,
            &self.cfg.profile,
        );
        let total = self.cfg.total_ops() as u64;
        let mut crash_at: BTreeSet<u64> = BTreeSet::new();
        if self.cfg.crash && total > 1 {
            let mut tries = 0;
            while crash_at.len() < self.cfg.crash_count && tries < 64 {
                crash_at.insert(self.rng.gen_range(1..total as usize) as u64);
                tries += 1;
            }
        }
        let mut cursors = vec![0usize; self.cfg.clients];
        loop {
            let live: Vec<usize> = (0..self.cfg.clients)
                .filter(|&c| cursors[c] < self.cfg.ops_per_client)
                .collect();
            if live.is_empty() {
                break;
            }
            let c = live[self.rng.gen_range(0..live.len())];
            let op = streams[c][cursors[c]].clone();
            cursors[c] += 1;
            self.trace.push(TraceEntry::Op {
                client: c,
                op: op.clone(),
            });
            self.exec(c, &op)?;
            self.check_invariants()?;
            self.op_index += 1;
            if crash_at.remove(&self.op_index) {
                self.crash(None)?;
            } else if self.cfg.ser_interval > 0
                && self.op_index.is_multiple_of(self.cfg.ser_interval)
            {
                self.ser_check()?;
            }
        }
        self.ser_check()
    }

    /// Replay a recorded (possibly shrunk) trace: execute exactly the
    /// listed steps, skipping the scheduler and crash-sampling RNG. The
    /// per-op invariant checks and the epoch cadence are preserved, so a
    /// violation reproduces with the same kind through the same checker.
    fn drive_trace(&mut self, trace: &[TraceEntry]) -> Result<(), Violation> {
        for (i, entry) in trace.iter().enumerate() {
            match entry {
                TraceEntry::Op { client, op } => {
                    let c = *client;
                    if c >= self.cfg.clients {
                        continue; // shrunk trace from a wider config
                    }
                    self.trace.push(TraceEntry::Op {
                        client: c,
                        op: op.clone(),
                    });
                    self.exec(c, op)?;
                    self.check_invariants()?;
                    self.op_index += 1;
                    // Match drive(): an op followed by a crash closes its
                    // epoch inside the crash, not via the cadence check.
                    let next_is_crash = matches!(trace.get(i + 1), Some(TraceEntry::Crash { .. }));
                    if !next_is_crash
                        && self.cfg.ser_interval > 0
                        && self.op_index.is_multiple_of(self.cfg.ser_interval)
                    {
                        self.ser_check()?;
                    }
                }
                TraceEntry::Crash { cut, fault } => self.crash(Some((*cut, *fault)))?,
            }
        }
        self.ser_check()
    }

    // -- statement execution ------------------------------------------------

    fn exec(&mut self, c: usize, op: &SimOp) -> Result<(), Violation> {
        match op {
            SimOp::Book { flight } => self.book(c, *flight, None),
            SimOp::BookEntangled { flight, partner } => self.book(c, *flight, Some(*partner)),
            SimOp::Read { target } => self.read_collapse(c, *target),
            SimOp::Peek { target } => self.read_uncertain(c, *target, ReadKind::Peek),
            SimOp::Possible { target } => self.read_uncertain(c, *target, ReadKind::Possible),
            SimOp::Ground { nth } => {
                let ids = self.engine.pending_ids();
                if ids.is_empty() {
                    self.noop(c, "GROUND");
                    return Ok(());
                }
                let id = ids[nth % ids.len()];
                let collapsed = self.engine.ground(c, id).map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::Ground { id, collapsed });
                Ok(())
            }
            SimOp::GroundAll => {
                self.engine.ground_all(c).map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::GroundAll);
                Ok(())
            }
            SimOp::Checkpoint => {
                self.engine.checkpoint(c).map_err(|e| self.engine_err(e))?;
                self.hist.record(c, Event::Checkpoint);
                Ok(())
            }
            SimOp::AuditInsert => {
                let tag = self.next_audit;
                self.next_audit += 1;
                let applied = self.blind_write(
                    c,
                    WriteOp::insert("Audit", tuple![tag]),
                    format!("+Audit({tag})"),
                )?;
                if applied {
                    self.audit_live.push(tag);
                }
                Ok(())
            }
            SimOp::AuditDelete { nth } => {
                if self.audit_live.is_empty() {
                    self.noop(c, "AUDIT-DELETE");
                    return Ok(());
                }
                let tag = self.audit_live[nth % self.audit_live.len()];
                let applied = self.blind_write(
                    c,
                    WriteOp::delete("Audit", tuple![tag]),
                    format!("-Audit({tag})"),
                )?;
                if applied {
                    self.audit_live.retain(|t| *t != tag);
                }
                Ok(())
            }
            SimOp::SeatAdd { flight } => {
                let fnum = self.cfg.flight_num(*flight);
                let seat = format!("Z{}", self.next_seat);
                self.next_seat += 1;
                let applied = self.blind_write(
                    c,
                    WriteOp::insert("Available", tuple![fnum, seat.as_str()]),
                    format!("+Available({fnum},{seat})"),
                )?;
                if applied {
                    *self.capacity.entry(fnum).or_insert(0) += 1;
                }
                Ok(())
            }
            SimOp::SeatRemove { flight, nth } => {
                let fnum = self.cfg.flight_num(*flight);
                let mut seats: Vec<String> = self.engine.with_db(|db| {
                    db.table("Available")
                        .map(|t| {
                            t.iter()
                                .filter(|r| r.get(0).and_then(|v| v.as_int()) == Some(fnum))
                                .filter_map(|r| r.get(1).and_then(|v| v.as_str()).map(String::from))
                                .collect()
                        })
                        .unwrap_or_default()
                });
                seats.sort();
                if seats.is_empty() {
                    self.noop(c, "SEAT-REMOVE");
                    return Ok(());
                }
                let seat = seats[nth % seats.len()].clone();
                let applied = self.blind_write(
                    c,
                    WriteOp::delete("Available", tuple![fnum, seat.as_str()]),
                    format!("-Available({fnum},{seat})"),
                )?;
                if applied {
                    let cap = self.capacity.entry(fnum).or_insert(0);
                    *cap = cap.saturating_sub(1);
                }
                Ok(())
            }
        }
    }

    fn noop(&mut self, c: usize, op: &str) {
        self.hist.record(c, Event::Noop { op: op.to_string() });
    }

    fn blind_write(&mut self, c: usize, op: WriteOp, desc: String) -> Result<bool, Violation> {
        let applied = self.engine.write(c, op).map_err(|e| self.engine_err(e))?;
        self.hist.record(c, Event::Write { desc, applied });
        Ok(applied)
    }

    fn book(&mut self, c: usize, flight: usize, partner: Option<usize>) -> Result<(), Violation> {
        let fnum = self.cfg.flight_num(flight);
        let user = format!("u{}", self.next_user);
        self.next_user += 1;
        let (txn, sql, entangled) = {
            let candidates: Vec<&str> = match partner {
                Some(_) => self
                    .booked
                    .iter()
                    .filter(|(_, f)| *f == fnum)
                    .map(|(u, _)| u.as_str())
                    .collect(),
                None => Vec::new(),
            };
            match partner {
                Some(p) if !candidates.is_empty() => {
                    let mate = candidates[p % candidates.len()];
                    (
                        entangled_booking(&user, mate, fnum),
                        booking_sql(&user, Some(mate), fnum),
                        true,
                    )
                }
                _ => (
                    solo_booking(&user, fnum),
                    booking_sql(&user, None, fnum),
                    false,
                ),
            }
        };
        let outcome = self
            .engine
            .submit(c, &txn, &sql)
            .map_err(|e| self.engine_err(e))?;
        match outcome {
            SubmitOutcome::Committed { id } => {
                self.commits += 1;
                self.txn_bodies.insert(id, txn);
                self.booked.push((user.clone(), fnum));
                let site = self.hist.record(
                    c,
                    Event::Submit {
                        user: user.clone(),
                        flight: fnum,
                        entangled,
                        id: Some(id),
                    },
                );
                self.user_sites.insert(user, site);
            }
            SubmitOutcome::Aborted => {
                self.aborts += 1;
                self.hist.record(
                    c,
                    Event::Submit {
                        user,
                        flight: fnum,
                        entangled,
                        id: None,
                    },
                );
            }
        }
        Ok(())
    }

    fn pick_booked(&self, target: usize) -> Option<String> {
        if self.booked.is_empty() {
            None
        } else {
            Some(self.booked[target % self.booked.len()].0.clone())
        }
    }

    /// Phantom check: non-empty answers require a known committed writer.
    fn wr_site(&self, user: &str, observed_rows: bool) -> Result<Option<Site>, Violation> {
        if !observed_rows {
            return Ok(None);
        }
        match self.user_sites.get(user) {
            Some(site) => Ok(Some(*site)),
            None => Err(self.viol(
                "phantom_read",
                format!("rows observed for {user}, who has no committed submission"),
            )),
        }
    }

    fn read_collapse(&mut self, c: usize, target: usize) -> Result<(), Violation> {
        let Some(user) = self.pick_booked(target) else {
            self.noop(c, "READ");
            return Ok(());
        };
        let atoms = booking_atoms(&user);
        let rows = self
            .engine
            .read(c, &user, &atoms)
            .map_err(|e| self.engine_err(e))?;
        // Collapse reads must fully hide uncertainty: the answer is the
        // extensional answer at return time, verified by an independent
        // evaluator.
        let ext = self
            .engine
            .with_db(|db| eval_atoms(&DeltaView::new(db), &atoms))
            .map_err(|e| self.viol("storage_error", e.to_string()))?;
        if canon_set(&rows) != canon_set(&ext) {
            return Err(self.viol(
                "read_not_collapsed",
                format!(
                    "READ {user}: engine returned {} rows, extensional state holds {}",
                    rows.len(),
                    ext.len()
                ),
            ));
        }
        self.stats.reads_checked += 1;
        let wr = self.wr_site(&user, !rows.is_empty())?;
        self.hist.record(
            c,
            Event::Read {
                kind: ReadKind::Collapse,
                user,
                answers: rows.len(),
                wr,
            },
        );
        Ok(())
    }

    fn read_uncertain(&mut self, c: usize, target: usize, kind: ReadKind) -> Result<(), Violation> {
        let Some(user) = self.pick_booked(target) else {
            self.noop(
                c,
                if kind == ReadKind::Peek {
                    "PEEK"
                } else {
                    "POSSIBLE"
                },
            );
            return Ok(());
        };
        let atoms = booking_atoms(&user);
        self.uncertain_reads += 1;
        let sampled = self.cfg.explain_sample > 0
            && self.uncertain_reads.is_multiple_of(self.cfg.explain_sample);
        let (answers, observed_rows) = match kind {
            ReadKind::Peek => {
                let rows = self
                    .engine
                    .read_peek(c, &user, &atoms)
                    .map_err(|e| self.engine_err(e))?;
                if sampled {
                    self.explain(&atoms, &[canon_set(&rows)], "peek")?;
                }
                (rows.len(), !rows.is_empty())
            }
            ReadKind::Possible => {
                let families = self
                    .engine
                    .read_possible(c, &user, &atoms, self.cfg.world_bound)
                    .map_err(|e| self.engine_err(e))?;
                if sampled {
                    let sets: Vec<CanonSet> = canon_family(&families).into_iter().collect();
                    self.explain(&atoms, &sets, "possible")?;
                }
                (families.len(), families.iter().any(|f| !f.is_empty()))
            }
            ReadKind::Collapse => unreachable!("collapse reads use read_collapse"),
        };
        let wr = self.wr_site(&user, observed_rows)?;
        self.hist.record(
            c,
            Event::Read {
                kind,
                user,
                answers,
                wr,
            },
        );
        Ok(())
    }

    /// Explainability: every answer (set) the engine returned must be the
    /// evaluation of some possible world over the currently pending
    /// transactions, independently enumerated from the extensional state.
    fn explain(
        &mut self,
        atoms: &[Atom],
        targets: &[CanonSet],
        what: &str,
    ) -> Result<(), Violation> {
        let ids = self.engine.pending_ids();
        let mut txns: Vec<&ResourceTransaction> = Vec::with_capacity(ids.len());
        for id in &ids {
            match self.txn_bodies.get(id) {
                Some(t) => txns.push(t),
                None => {
                    return Err(self.viol(
                        "model_desync",
                        format!("pending T{id} unknown to the driver model"),
                    ))
                }
            }
        }
        let bound = self.cfg.world_bound;
        let seed = self.seed;
        // Enumerate worlds and evaluate each with the checker's own
        // evaluator; any enumeration/evaluation failure (e.g. solver
        // budget) downgrades to a skip, never a violation.
        let verdict: Result<(Vec<CanonSet>, bool), String> = self.engine.with_db(|db| {
            let ws = enumerate_worlds_seeded(db, &txns, bound, seed).map_err(|e| e.to_string())?;
            let mut sets = Vec::with_capacity(ws.worlds.len());
            for w in &ws.worlds {
                let view = w.view(db).map_err(|e| e.to_string())?;
                let ans = eval_atoms(&view, atoms).map_err(|e| e.to_string())?;
                sets.push(canon_set(&ans));
            }
            Ok((sets, ws.truncated))
        });
        let (world_sets, truncated) = match verdict {
            Ok(v) => v,
            Err(_) => {
                self.stats.explain_skipped += 1;
                return Ok(());
            }
        };
        let all_found = targets.iter().all(|t| world_sets.contains(t));
        if all_found {
            self.stats.explain_checked += 1;
            Ok(())
        } else if truncated {
            self.stats.explain_skipped += 1;
            Ok(())
        } else {
            Err(self.viol(
                &format!("{what}_unexplainable"),
                format!(
                    "{} pending txns yield {} possible worlds, none explains the returned answer",
                    txns.len(),
                    world_sets.len()
                ),
            ))
        }
    }

    // -- invariants ---------------------------------------------------------

    fn check_invariants(&mut self) -> Result<(), Violation> {
        self.stats.invariant_checks += 1;
        let (committed, grounded, pending) = self.engine.accounting();
        if committed < grounded || committed - grounded != pending {
            return Err(self.viol(
                "accounting",
                format!("committed − grounded ≠ pending: {committed} − {grounded} ≠ {pending}"),
            ));
        }
        let offset = match self.cfg.mutation {
            Some(Mutation::OverstateCapacity) => 1usize,
            // WAL faults corrupt the log image, not the checker model.
            Some(Mutation::CorruptWalByte) | Some(Mutation::DropGroupFlush) | None => 0,
        };
        let capacity = self.capacity.clone();
        let problem = self
            .engine
            .with_db(|db| domain_check(db, &capacity, offset));
        if let Some(detail) = problem {
            return Err(self.viol("conservation", detail));
        }
        Ok(())
    }

    // -- epoch serializability ----------------------------------------------

    fn ser_check(&mut self) -> Result<(), Violation> {
        let image = self.engine.wal_image();
        let (records, _) =
            replay_bytes(&image).map_err(|e| self.viol("wal_unreadable", e.to_string()))?;
        let mut by_id: HashMap<TxnId, ResourceTransaction> = HashMap::new();
        for r in &records {
            if let LogRecord::PendingAdd { id, payload } = r {
                let txn = decode_transaction(payload)
                    .map_err(|e| self.viol("wal_undecodable", format!("T{id}: {e}")))?;
                by_id.insert(*id, txn);
            }
        }
        let mut recs: Vec<GroundedRec> = Vec::new();
        for r in &records[self.records_seen..] {
            match r {
                LogRecord::Ground { id, ops } => {
                    let txn = by_id.get(id).cloned();
                    if txn.is_none() {
                        return Err(self.viol(
                            "ground_without_commit",
                            format!("Ground record for T{id} with no PendingAdd in the log"),
                        ));
                    }
                    recs.push(GroundedRec {
                        id: Some(*id),
                        txn,
                        ops: ops.clone(),
                    });
                }
                LogRecord::Write(op) => recs.push(GroundedRec {
                    id: None,
                    txn: None,
                    ops: vec![op.clone()],
                }),
                _ => {}
            }
        }
        // Replay equivalence: base ⊕ epoch ops (WAL order) must equal the
        // engine's current extensional state.
        let mut replayed = self.epoch_base.clone();
        for rec in &recs {
            for op in &rec.ops {
                replayed
                    .apply(op)
                    .map_err(|e| self.viol("replay_error", e.to_string()))?;
            }
        }
        let expect = world_fingerprint(&replayed);
        let actual = self.engine.with_db(world_fingerprint);
        self.stats.replay_checks += 1;
        if expect != actual {
            return Err(self.viol(
                "replay_divergence",
                format!(
                    "epoch base + {} WAL records does not reproduce the engine state",
                    recs.len()
                ),
            ));
        }
        self.stats.ser_checks += 1;
        let (outcome, greedy) = check_serializable(&self.epoch_base, &recs, self.cfg.dfs_budget);
        match outcome {
            SerOutcome::Serializable { .. } => {
                if greedy {
                    self.stats.ser_greedy += 1;
                } else {
                    self.stats.ser_dfs += 1;
                }
            }
            SerOutcome::Inconclusive { .. } => self.stats.ser_inconclusive += 1,
            SerOutcome::Violation { detail } => {
                return Err(self.viol("not_serializable", detail));
            }
        }
        // Open the next epoch at the verified state.
        self.epoch_base = replayed;
        self.records_seen = records.len();
        Ok(())
    }

    // -- crash injection ----------------------------------------------------

    /// Sample a WAL fault for the active mutation against the cut prefix.
    /// Faults never touch the setup prefix (a real deployment syncs the
    /// schema install before serving traffic).
    fn plan_fault(&mut self, prefix: &[u8]) -> Option<SinkFault> {
        match self.cfg.mutation {
            Some(Mutation::CorruptWalByte) if prefix.len() > self.setup_bytes => {
                Some(SinkFault::FlipByte {
                    offset: self.rng.gen_range(self.setup_bytes..prefix.len()) as u64,
                })
            }
            Some(Mutation::DropGroupFlush) => {
                let spans: Vec<(u64, u64)> = frame_spans(prefix)
                    .into_iter()
                    .filter(|(start, _)| *start >= self.setup_bytes as u64)
                    .collect();
                if spans.is_empty() {
                    return None;
                }
                let i = self.rng.gen_range(0..spans.len());
                let max_run = (spans.len() - i).min(4);
                let run = 1 + self.rng.gen_range(0..max_run);
                Some(SinkFault::DropRange {
                    offset: spans[i].0,
                    len: spans[i + run - 1].1 - spans[i].0,
                })
            }
            _ => None,
        }
    }

    /// Independently rebuild the post-recovery state a log image implies.
    fn replay_model(
        &self,
        records: &[LogRecord],
    ) -> Result<(Database, BTreeMap<TxnId, ResourceTransaction>), Violation> {
        let mut mdb = Database::new();
        let mut pending: BTreeMap<TxnId, ResourceTransaction> = BTreeMap::new();
        for r in records {
            match r {
                LogRecord::CreateTable(schema) => {
                    mdb.create_table(schema.clone())
                        .map_err(|e| self.viol("replay_error", e.to_string()))?;
                }
                LogRecord::CreateIndex { .. } | LogRecord::Checkpoint => {}
                LogRecord::Write(op) => {
                    mdb.apply(op)
                        .map_err(|e| self.viol("replay_error", e.to_string()))?;
                }
                LogRecord::PendingAdd { id, payload } => {
                    let txn = decode_transaction(payload)
                        .map_err(|e| self.viol("wal_undecodable", format!("T{id}: {e}")))?;
                    pending.insert(*id, txn);
                }
                LogRecord::PendingRemove { id } => {
                    pending.remove(id);
                }
                LogRecord::Ground { id, ops } => {
                    pending.remove(id);
                    for op in ops {
                        mdb.apply(op)
                            .map_err(|e| self.viol("replay_error", e.to_string()))?;
                    }
                }
            }
        }
        Ok((mdb, pending))
    }

    /// Crash, optionally corrupt the surviving log, recover, verify.
    ///
    /// `plan` replays a recorded crash (trace mode); `None` samples the
    /// cut — and, under a WAL mutation, a fault — from the run RNG. Two
    /// models are rebuilt independently: the **faulted** model (replay of
    /// the bytes the engine actually recovers from) and the **pristine**
    /// model (replay of the uncorrupted prefix). The engine must match
    /// the faulted model exactly — recovery lands on the longest
    /// checksum-valid prefix of what the media holds, no garbage applied
    /// (`recovery_pending_mismatch` / `recovery_state_mismatch`
    /// otherwise) — and any client-visible divergence from the pristine
    /// model is reported as `recovery_divergence`, which is precisely
    /// what the WAL mutations must trigger.
    fn crash(&mut self, plan: Option<(u64, Option<SinkFault>)>) -> Result<(), Violation> {
        // Close the epoch first so the cut never spans an unchecked epoch.
        self.ser_check()?;
        let image = self.engine.wal_image();
        let (cut, fault) = match plan {
            Some((cut, fault)) => ((cut as usize).min(image.len()), fault),
            None => {
                let cut = self.rng.gen_range(self.setup_bytes..image.len() + 1);
                (cut, self.plan_fault(&image[..cut]))
            }
        };
        self.trace.push(TraceEntry::Crash {
            cut: cut as u64,
            fault,
        });
        let prefix = image[..cut].to_vec();
        let faults: Vec<SinkFault> = fault.into_iter().collect();
        let faulted = apply_faults(&prefix, &faults);
        let (precords, _) =
            replay_bytes(&prefix).map_err(|e| self.viol("wal_unreadable", e.to_string()))?;
        let (pdb, ppending) = self.replay_model(&precords)?;
        let pristine_ids: Vec<TxnId> = ppending.keys().copied().collect();
        let pristine_fp = world_fingerprint(&pdb);
        let (records, pending, mdb);
        if faults.is_empty() {
            (records, mdb, pending) = (precords, pdb, ppending);
        } else {
            let (frecords, _) =
                replay_bytes(&faulted).map_err(|e| self.viol("wal_unreadable", e.to_string()))?;
            let (fdb, fpending) = self.replay_model(&frecords)?;
            (records, mdb, pending) = (frecords, fdb, fpending);
        }
        let survivors = pending.len();
        let engine =
            Engine::recover(&self.cfg, prefix, self.qcfg.clone(), &faults).map_err(|e| {
                self.viol(
                    "recovery_failed",
                    format!("cut at byte {cut} of {}: {e}", image.len()),
                )
            })?;
        self.stats.recovery_checks += 1;
        // The engine must land exactly on the longest checksum-valid
        // prefix of the (possibly faulted) media bytes.
        let got_ids = engine.pending_ids();
        let want_ids: Vec<TxnId> = pending.keys().copied().collect();
        if got_ids != want_ids {
            return Err(self.viol(
                "recovery_pending_mismatch",
                format!("recovered pending {got_ids:?}, WAL prefix implies {want_ids:?}"),
            ));
        }
        let got_fp = engine.with_db(world_fingerprint);
        if got_fp != world_fingerprint(&mdb) {
            return Err(self.viol(
                "recovery_state_mismatch",
                format!("recovered extensional state diverges from WAL prefix replay (cut {cut})"),
            ));
        }
        // Durability: the recovered state must also match what the
        // *pristine* prefix implies — an injected fault that changed
        // anything client-visible is a detected loss of acknowledged
        // history. This is the check the WAL mutations arm.
        if !faults.is_empty() && (got_ids != pristine_ids || got_fp != pristine_fp) {
            return Err(self.viol(
                "recovery_divergence",
                format!(
                    "recovered state diverges from the pristine WAL prefix \
                     (cut {cut}, fault {fault:?})"
                ),
            ));
        }
        // Adopt the recovered engine and rebaseline the checker model.
        self.engine = engine;
        self.crashes += 1;
        self.capacity = self
            .cfg
            .flights
            .flight_numbers()
            .map(|f| (f, count_flight_rows(&mdb, f)))
            .collect();
        self.audit_live = mdb
            .table("Audit")
            .map(|t| {
                let mut tags: Vec<i64> = t.iter().filter_map(|r| r.get(0)?.as_int()).collect();
                tags.sort_unstable();
                tags
            })
            .unwrap_or_default();
        self.booked = {
            let mut booked: Vec<(String, i64)> = mdb
                .table("Bookings")
                .map(|t| {
                    t.iter()
                        .filter_map(|r| {
                            Some((r.get(0)?.as_str()?.to_string(), r.get(1)?.as_int()?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            for txn in pending.values() {
                if let Some(uf) = booking_user_flight(txn) {
                    booked.push(uf);
                }
            }
            booked
        };
        self.txn_bodies = pending.into_iter().collect();
        self.epoch_base = mdb;
        self.records_seen = records.len();
        self.hist.record(
            self.cfg.clients,
            Event::Crash {
                cut,
                wal_len: image.len(),
                survivors,
            },
        );
        Ok(())
    }

    fn finish(self, violation: Option<Violation>) -> RunResult {
        let fingerprint = self.engine.with_db(world_fingerprint);
        let mut digest = self.hist.digest();
        for b in fingerprint.as_bytes() {
            digest ^= u64::from(*b);
            digest = digest.wrapping_mul(0x1000_0000_01b3);
        }
        let obs_events = self.engine.events(crate::artifact::TAIL_EVENTS);
        RunResult {
            seed: self.seed,
            engine: self.cfg.engine.label(),
            ops: self.op_index,
            commits: self.commits,
            aborts: self.aborts,
            crashes: self.crashes,
            stats: self.stats,
            violation,
            fingerprint,
            digest,
            history: self.hist,
            obs_events,
            trace: self.trace,
        }
    }
}

/// Per-flight `Available` + `Bookings` row count (the conserved quantity).
fn count_flight_rows(db: &Database, flight: i64) -> usize {
    let count = |rel: &str, col: usize| {
        db.table(rel)
            .map(|t| {
                t.iter()
                    .filter(|r| r.get(col).and_then(|v| v.as_int()) == Some(flight))
                    .count()
            })
            .unwrap_or(0)
    };
    count("Available", 0) + count("Bookings", 1)
}

/// Domain invariants over the extensional state: seat conservation per
/// flight, no double-booked seat, no double-booked user, no seat both
/// available and booked.
fn domain_check(db: &Database, capacity: &BTreeMap<i64, usize>, offset: usize) -> Option<String> {
    let mut seen_seats: BTreeSet<(i64, String)> = BTreeSet::new();
    let mut seen_users: BTreeSet<String> = BTreeSet::new();
    if let Ok(t) = db.table("Bookings") {
        for row in t.iter() {
            let user = row.get(0)?.as_str()?.to_string();
            let flight = row.get(1)?.as_int()?;
            let seat = row.get(2)?.as_str()?.to_string();
            if !seen_seats.insert((flight, seat.clone())) {
                return Some(format!("seat {seat} on flight {flight} double-booked"));
            }
            if !seen_users.insert(user.clone()) {
                return Some(format!("user {user} holds more than one booking"));
            }
            if db.contains("Available", &tuple![flight, seat.as_str()]) {
                return Some(format!(
                    "seat {seat} on flight {flight} is both available and booked"
                ));
            }
        }
    }
    for (flight, cap) in capacity {
        let have = count_flight_rows(db, *flight);
        if have != cap + offset {
            return Some(format!(
                "flight {flight}: |Available| + |Bookings| = {have}, expected {}",
                cap + offset
            ));
        }
    }
    None
}

/// Execute one seeded run against the configured engine and return the
/// full result (the run never panics on a violation — it stops and
/// reports).
pub fn run_seed(seed: u64, cfg: &SimConfig) -> RunResult {
    match Driver::new(seed, cfg) {
        Ok(mut d) => {
            let violation = d.drive().err();
            d.finish(violation)
        }
        Err(v) => failed_setup(seed, cfg, v),
    }
}

/// Re-execute a recorded (possibly shrunk) op trace instead of drawing
/// ops from the seeded streams. The seed still controls engine
/// tie-breaking and world enumeration, so a trace replayed under its
/// original seed reproduces the original run exactly; crash entries
/// carry their cut and fault inline, so replay is independent of how
/// many RNG draws the original schedule consumed.
pub fn run_trace(seed: u64, cfg: &SimConfig, trace: &[TraceEntry]) -> RunResult {
    match Driver::new(seed, cfg) {
        Ok(mut d) => {
            let violation = d.drive_trace(trace).err();
            d.finish(violation)
        }
        Err(v) => failed_setup(seed, cfg, v),
    }
}

fn failed_setup(seed: u64, cfg: &SimConfig, v: Violation) -> RunResult {
    RunResult {
        seed,
        engine: cfg.engine.label(),
        ops: 0,
        commits: 0,
        aborts: 0,
        crashes: 0,
        stats: CheckStats::default(),
        violation: Some(v),
        fingerprint: String::new(),
        digest: 0,
        history: History::new(cfg.clients),
        obs_events: Vec::new(),
        trace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(engine: EngineKind) -> SimConfig {
        SimConfig {
            clients: 3,
            ops_per_client: 60,
            crash_count: 1,
            ser_interval: 40,
            ..SimConfig::smoke(engine)
        }
    }

    #[test]
    fn same_seed_same_run() {
        for engine in [EngineKind::Single, EngineKind::Sharded] {
            let cfg = tiny(engine);
            let a = run_seed(11, &cfg);
            let b = run_seed(11, &cfg);
            assert!(
                a.violation.is_none(),
                "unexpected violation: {:?}",
                a.violation
            );
            assert_eq!(a.digest, b.digest, "{engine:?} run is not deterministic");
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.commits, b.commits);
            assert_eq!(a.history.len(), b.history.len());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = tiny(EngineKind::Single);
        let a = run_seed(1, &cfg);
        let b = run_seed(2, &cfg);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn clean_runs_have_no_violations_and_exercise_the_checkers() {
        for engine in [EngineKind::Single, EngineKind::Sharded] {
            let cfg = tiny(engine);
            for seed in [3, 4, 5] {
                let r = run_seed(seed, &cfg);
                assert!(
                    r.violation.is_none(),
                    "{engine:?} seed {seed}: {:?}\ntail:\n{}",
                    r.violation,
                    r.history.tail_lines(20).join("\n")
                );
                assert_eq!(r.ops, cfg.total_ops() as u64);
                assert!(r.stats.ser_checks > 0);
                assert!(r.stats.invariant_checks >= r.ops);
                assert!(r.crashes >= 1, "{engine:?} seed {seed}: no crash injected");
            }
        }
    }

    #[test]
    fn mutation_induces_a_violation() {
        let cfg = SimConfig {
            mutation: Some(Mutation::OverstateCapacity),
            ..tiny(EngineKind::Single)
        };
        let r = run_seed(7, &cfg);
        let v = r.violation.expect("overstated capacity must be caught");
        assert_eq!(v.kind, "conservation");
    }

    /// The SQL the wire engine sends must parse to the *identical*
    /// `ResourceTransaction` the in-process engines submit — var ids
    /// are assigned in first-appearance order by both parsers, and the
    /// solver hashes (seed, atom index), so textual equivalence here is
    /// what makes cross-engine digests comparable at all.
    #[test]
    fn booking_sql_parses_to_the_datalog_transaction() {
        use qdb_logic::parse_sql_transaction;
        let solo = parse_sql_transaction(&booking_sql("u1", None, 7)).unwrap();
        assert_eq!(solo, solo_booking("u1", 7));
        let ent = parse_sql_transaction(&booking_sql("u1", Some("u2"), 7)).unwrap();
        assert_eq!(ent, entangled_booking("u1", "u2", 7));
    }

    #[test]
    fn wire_engine_runs_clean() {
        let cfg = tiny(EngineKind::Wire);
        for seed in [3, 5] {
            let r = run_seed(seed, &cfg);
            assert!(
                r.violation.is_none(),
                "wire seed {seed}: {:?}\ntail:\n{}",
                r.violation,
                r.history.tail_lines(20).join("\n")
            );
            assert_eq!(r.ops, cfg.total_ops() as u64);
            assert!(r.crashes >= 1, "wire seed {seed}: no crash injected");
        }
    }

    /// Same seed through every engine gives the same client-visible
    /// history: the wire path may not change what any client observes,
    /// only how statements travel. POSSIBLE answer sets are the one
    /// documented exclusion (see [`History::parity_digest`]).
    #[test]
    fn engines_agree_on_the_client_visible_history() {
        let runs: Vec<RunResult> = [EngineKind::Single, EngineKind::Sharded, EngineKind::Wire]
            .into_iter()
            .map(|engine| run_seed(11, &tiny(engine)))
            .collect();
        for r in &runs {
            assert!(r.violation.is_none(), "{}: {:?}", r.engine, r.violation);
        }
        for r in &runs[1..] {
            assert_eq!(
                (
                    r.history.parity_digest(),
                    r.fingerprint.as_str(),
                    r.commits,
                    r.aborts,
                    r.crashes
                ),
                (
                    runs[0].history.parity_digest(),
                    runs[0].fingerprint.as_str(),
                    runs[0].commits,
                    runs[0].aborts,
                    runs[0].crashes
                ),
                "engine {} diverges from {}",
                r.engine,
                runs[0].engine
            );
        }
    }

    /// Every registered mutation must make the checker fire within a
    /// bounded seed budget — a mutation that never triggers is dead
    /// weight that would rot silently.
    #[test]
    fn every_mutation_fires_within_budget() {
        for m in Mutation::all() {
            let allowed: &[&str] = match m {
                Mutation::OverstateCapacity => &["conservation"],
                Mutation::CorruptWalByte | Mutation::DropGroupFlush => {
                    &["recovery_divergence", "recovery_failed"]
                }
            };
            let fired = (1..=10).find_map(|seed| {
                let cfg = SimConfig {
                    mutation: Some(m),
                    ..tiny(EngineKind::Single)
                };
                run_seed(seed, &cfg).violation.map(|v| (seed, v))
            });
            let (seed, v) =
                fired.unwrap_or_else(|| panic!("mutation {} never fired in 10 seeds", m.name()));
            assert!(
                allowed.contains(&v.kind.as_str()),
                "mutation {} fired as unexpected kind {:?} (seed {seed}): {}",
                m.name(),
                v.kind,
                v.detail
            );
        }
    }

    #[test]
    fn trace_entries_roundtrip_through_render_and_parse() {
        let entries = vec![
            TraceEntry::Op {
                client: 2,
                op: SimOp::Book { flight: 3 },
            },
            TraceEntry::Op {
                client: 0,
                op: SimOp::BookEntangled {
                    flight: 1,
                    partner: 4,
                },
            },
            TraceEntry::Op {
                client: 1,
                op: SimOp::Possible { target: 9 },
            },
            TraceEntry::Op {
                client: 1,
                op: SimOp::SeatRemove { flight: 2, nth: 17 },
            },
            TraceEntry::Crash {
                cut: 1234,
                fault: None,
            },
            TraceEntry::Crash {
                cut: 99,
                fault: Some(SinkFault::FlipByte { offset: 55 }),
            },
            TraceEntry::Crash {
                cut: 4096,
                fault: Some(SinkFault::DropRange {
                    offset: 100,
                    len: 42,
                }),
            },
        ];
        for e in &entries {
            let rendered = e.render();
            let back = TraceEntry::parse(&rendered)
                .unwrap_or_else(|| panic!("unparseable trace line {rendered:?}"));
            assert_eq!(&back, e, "roundtrip of {rendered:?}");
        }
    }

    /// Replaying the recorded trace of a violating run under the same
    /// seed reproduces the violation exactly — this is the contract the
    /// shrinker's re-execution oracle depends on.
    #[test]
    fn recorded_trace_replays_to_the_same_violation() {
        let cfg = SimConfig {
            mutation: Some(Mutation::CorruptWalByte),
            ..tiny(EngineKind::Single)
        };
        let (seed, original) = (1..=10)
            .map(|seed| (seed, run_seed(seed, &cfg)))
            .find(|(_, r)| r.violation.is_some())
            .expect("corrupt_wal_byte must fire within 10 seeds");
        let v = original.violation.as_ref().unwrap();
        let replay = run_trace(seed, &cfg, &original.trace);
        let rv = replay.violation.expect("trace replay must re-violate");
        assert_eq!(rv.kind, v.kind);
        assert_eq!(rv.op_index, v.op_index);
        assert_eq!(replay.digest, original.digest);
    }
}
