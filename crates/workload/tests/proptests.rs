//! Property tests for the workload layer: conservation laws of the
//! runner, arrival-order invariants, and quantum-vs-IS dominance.

use proptest::prelude::*;
use qdb_workload::{
    arrange, make_pairs, orders::measured_max_pending, run_is, run_quantum, ArrivalOrder,
    FlightsConfig, RunConfig,
};

fn arb_order() -> impl Strategy<Value = ArrivalOrder> {
    prop_oneof![
        Just(ArrivalOrder::Alternate),
        Just(ArrivalOrder::InOrder),
        Just(ArrivalOrder::ReverseOrder),
        any::<u64>().prop_map(|seed| ArrivalOrder::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: with capacity for everyone, a quantum run seats every
    /// user exactly once, never aborts, and coordination never exceeds the
    /// theoretical maximum.
    #[test]
    fn quantum_run_conserves_seats(
        order in arb_order(),
        rows in 2usize..5,
        k in 2usize..62,
    ) {
        let flights = FlightsConfig { flights: 2, rows_per_flight: rows };
        // Fill to capacity: 3·rows users per flight.
        let pairs_per_flight = rows * 3 / 2;
        let cfg = RunConfig::resource_only(flights, pairs_per_flight, order, k);
        let res = run_quantum(&cfg);
        prop_assert_eq!(res.aborted, 0);
        prop_assert_eq!(res.coord.seated_users, res.coord.total_users);
        prop_assert!(res.coord.coordinated_users <= res.coord.max_possible);
        prop_assert!(res.coordination_percent() <= 100.0 + 1e-9);
        // Cumulative series is monotone and one entry per operation.
        prop_assert_eq!(res.cumulative_micros.len(), cfg.n_transactions());
        prop_assert!(res.cumulative_micros.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The quantum database never coordinates worse than IS on the same
    /// workload (the paper's headline claim), and with a full-size k it
    /// achieves the maximum.
    #[test]
    fn quantum_dominates_is(order in arb_order(), rows in 2usize..5) {
        let flights = FlightsConfig { flights: 1, rows_per_flight: rows };
        let pairs = rows * 3 / 2;
        let cfg = RunConfig::resource_only(flights, pairs, order, 61);
        let q = run_quantum(&cfg);
        let is = run_is(&cfg);
        prop_assert!(
            q.coordination_percent() + 1e-9 >= is.coordination_percent(),
            "quantum {:.1} < IS {:.1} under {:?}",
            q.coordination_percent(), is.coordination_percent(), order
        );
        prop_assert!((q.coordination_percent() - 100.0).abs() < 1e-9);
    }

    /// Table 1 invariants for every order and size: the measured maximum
    /// pending never exceeds the analytic bound, and Alternate is exactly 1.
    #[test]
    fn arrival_order_bounds(order in arb_order(), n_pairs in 1usize..40) {
        let flights = FlightsConfig { flights: 1, rows_per_flight: n_pairs };
        let pairs = make_pairs(&flights, n_pairs);
        let reqs = arrange(&pairs, order);
        let measured = measured_max_pending(&reqs);
        prop_assert!(measured <= order.max_pending_bound(reqs.len()));
        if order == ArrivalOrder::Alternate {
            prop_assert_eq!(measured, 1);
        }
        // Every user appears exactly once.
        let mut users: Vec<&str> = reqs.iter().map(|r| r.user.as_str()).collect();
        users.sort_unstable();
        users.dedup();
        prop_assert_eq!(users.len(), 2 * n_pairs);
    }

    /// Coordination statistics are consistent: counts are even (pairs),
    /// bounded by seated users, and the denominator respects row capacity.
    #[test]
    fn coordination_stats_invariants(
        rows in 1usize..6,
        pairs_per_flight in 1usize..8,
    ) {
        prop_assume!(2 * pairs_per_flight <= rows * 3);
        let flights = FlightsConfig { flights: 2, rows_per_flight: rows };
        let cfg = RunConfig::resource_only(
            flights,
            pairs_per_flight,
            ArrivalOrder::Random { seed: 99 },
            61,
        );
        let res = run_quantum(&cfg);
        let pairs = make_pairs(&flights, pairs_per_flight);
        prop_assert_eq!(res.coord.coordinated_users % 2, 0);
        prop_assert!(res.coord.coordinated_users <= res.coord.seated_users);
        let expected_max: usize = (2 * pairs_per_flight).min(2 * rows) * 2;
        prop_assert_eq!(res.coord.max_possible, expected_max);
        let _ = pairs;
    }
}
