//! Entangled resource transactions for the travel workload (§5.1–5.2).

use qdb_logic::{parse_transaction, ResourceTransaction};

use crate::flights::FlightsConfig;

/// A coordination pair: two users who want adjacent seats on `flight`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pair {
    /// First user (submits transaction `a`).
    pub a: String,
    /// Second user.
    pub b: String,
    /// The flight both request.
    pub flight: i64,
}

/// Build the entangled booking transaction for `user` on `flight`, with a
/// soft preference for sitting next to `partner`:
///
/// ```text
/// -Available(F, s), +Bookings(user, F, s) :-1
///     Available(F, s), Bookings(partner, F, s2)?, Adjacent(s, s2)?
/// ```
pub fn entangled_booking(user: &str, partner: &str, flight: i64) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available({flight}, s), +Bookings('{user}', {flight}, s) :-1 \
         Available({flight}, s), Bookings('{partner}', {flight}, s2)?, Adjacent(s, s2)?"
    ))
    .expect("workload transaction is well-formed")
}

/// A plain (non-entangled) booking on `flight`.
pub fn solo_booking(user: &str, flight: i64) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available({flight}, s), +Bookings('{user}', {flight}, s) :-1 Available({flight}, s)"
    ))
    .expect("workload transaction is well-formed")
}

/// Generate `pairs_per_flight` coordination pairs for every flight of
/// `cfg`, capacity permitting. User names encode flight and pair index so
/// results are self-describing.
pub fn make_pairs(cfg: &FlightsConfig, pairs_per_flight: usize) -> Vec<Pair> {
    assert!(
        2 * pairs_per_flight <= cfg.seats_per_flight(),
        "pairs exceed flight capacity"
    );
    let mut out = Vec::with_capacity(cfg.flights * pairs_per_flight);
    for f in cfg.flight_numbers() {
        for i in 0..pairs_per_flight {
            out.push(Pair {
                a: format!("f{f}p{i}a"),
                b: format!("f{f}p{i}b"),
                flight: f,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_shape() {
        let t = entangled_booking("Mickey", "Goofy", 123);
        assert_eq!(t.updates.len(), 2);
        assert_eq!(t.body.len(), 3);
        assert_eq!(t.optional_body().count(), 2);
        assert!(qdb_core::entangle::has_coordination_constraint(&t));
        let s = solo_booking("Pluto", 5);
        assert_eq!(s.optional_body().count(), 0);
    }

    #[test]
    fn partners_are_mutual() {
        let a = entangled_booking("A", "B", 1);
        let b = entangled_booking("B", "A", 1);
        assert!(qdb_core::entangle::coordinates_with(&a, &b));
        assert!(qdb_core::entangle::coordinates_with(&b, &a));
        // Different flights never coordinate.
        let c = entangled_booking("B", "A", 2);
        assert!(!qdb_core::entangle::coordinates_with(&a, &c));
    }

    #[test]
    fn pair_generation_respects_capacity() {
        let cfg = FlightsConfig {
            flights: 2,
            rows_per_flight: 2,
        };
        let pairs = make_pairs(&cfg, 3); // 6 users ≤ 6 seats
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().any(|p| p.flight == 2));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overfull_pairs_panic() {
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 1,
        };
        let _ = make_pairs(&cfg, 2); // 4 users > 3 seats
    }
}
