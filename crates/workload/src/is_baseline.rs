//! The "intelligent social" (IS) baseline (§5.2).
//!
//! *"Such a user first issues a query to check whether his/her friend has
//! an existing reservation. If so, he books the adjacent seat, and if not
//! he books a seat with a free adjacent seat. The IS workload simulates
//! the kind of coordination that is achievable without using a quantum
//! database."* Every choice is made eagerly against the current database;
//! there is no deferral and nothing ever moves again.

use qdb_storage::{tuple, ConjunctiveQuery, Database, PatTerm, Pattern, Value};

/// An eager booking client over a plain relational database.
pub struct IsClient {
    db: Database,
}

/// Outcome of one IS booking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsOutcome {
    /// The seat booked, if any seat was left.
    pub seat: Option<String>,
    /// Whether the booking landed adjacent to the partner's existing
    /// booking (coordination visible *at booking time*; final coordination
    /// is measured on the full bookings table).
    pub next_to_partner: bool,
}

impl IsClient {
    /// Wrap a database (typically [`crate::flights::build_database`]).
    pub fn new(db: Database) -> Self {
        IsClient { db }
    }

    /// The underlying database (for measurement).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Book a seat for `user` on `flight`, trying to sit next to
    /// `partner`.
    pub fn book(&mut self, user: &str, partner: &str, flight: i64) -> IsOutcome {
        // 1. Does the partner already hold a seat on this flight? If so,
        //    is any seat adjacent to it still free?
        if let Some(seat) = self.adjacent_to_partner(partner, flight) {
            self.take(user, flight, &seat);
            return IsOutcome {
                seat: Some(seat),
                next_to_partner: true,
            };
        }
        // 2. Otherwise pick a seat that still has a free neighbour, so the
        //    partner can later join.
        if let Some(seat) = self.seat_with_free_neighbour(flight) {
            self.take(user, flight, &seat);
            return IsOutcome {
                seat: Some(seat),
                next_to_partner: false,
            };
        }
        // 3. Otherwise any seat at all.
        if let Some(seat) = self.any_seat(flight) {
            self.take(user, flight, &seat);
            return IsOutcome {
                seat: Some(seat),
                next_to_partner: false,
            };
        }
        IsOutcome {
            seat: None,
            next_to_partner: false,
        }
    }

    /// Read a user's booking (the IS analogue of the mixed workload's
    /// read transactions; a plain query, no side effects).
    pub fn read_booking(&self, user: &str) -> Option<(i64, String)> {
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Bookings",
            vec![PatTerm::val(user), PatTerm::Var(0), PatTerm::Var(1)],
        )])
        .with_limit(1);
        let out = q.eval(&self.db).expect("schema installed");
        out.bindings.first().map(|b| {
            (
                b[&0].as_int().expect("flight is int"),
                b[&1].as_str().expect("seat is str").to_string(),
            )
        })
    }

    /// Scan the whole bookings table (the IS analogue of [`crate::mixed::Op::Scan`]).
    pub fn scan_bookings(&self) -> usize {
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Bookings",
            vec![PatTerm::Var(0), PatTerm::Var(1), PatTerm::Var(2)],
        )]);
        q.eval(&self.db).expect("schema installed").bindings.len()
    }

    fn adjacent_to_partner(&self, partner: &str, flight: i64) -> Option<String> {
        // Bookings(partner, F, s2) ⋈ Adjacent(s, s2) ⋈ Available(F, s)
        let (s, s2) = (0, 1);
        let q = ConjunctiveQuery::new(vec![
            Pattern::new(
                "Bookings",
                vec![
                    PatTerm::val(partner),
                    PatTerm::val(flight),
                    PatTerm::Var(s2),
                ],
            ),
            Pattern::new("Adjacent", vec![PatTerm::Var(s), PatTerm::Var(s2)]),
            Pattern::new("Available", vec![PatTerm::val(flight), PatTerm::Var(s)]),
        ])
        .with_limit(1);
        let out = q.eval(&self.db).expect("schema installed");
        out.bindings
            .first()
            .map(|b| b[&s].as_str().expect("seat").to_string())
    }

    fn seat_with_free_neighbour(&self, flight: i64) -> Option<String> {
        let (s, s2) = (0, 1);
        let q = ConjunctiveQuery::new(vec![
            Pattern::new("Available", vec![PatTerm::val(flight), PatTerm::Var(s)]),
            Pattern::new("Adjacent", vec![PatTerm::Var(s), PatTerm::Var(s2)]),
            Pattern::new("Available", vec![PatTerm::val(flight), PatTerm::Var(s2)]),
        ])
        .with_limit(1);
        let out = q.eval(&self.db).expect("schema installed");
        out.bindings
            .first()
            .map(|b| b[&s].as_str().expect("seat").to_string())
    }

    fn any_seat(&self, flight: i64) -> Option<String> {
        let q = ConjunctiveQuery::new(vec![Pattern::new(
            "Available",
            vec![PatTerm::val(flight), PatTerm::Var(0)],
        )])
        .with_limit(1);
        let out = q.eval(&self.db).expect("schema installed");
        out.bindings
            .first()
            .map(|b| b[&0].as_str().expect("seat").to_string())
    }

    fn take(&mut self, user: &str, flight: i64, seat: &str) {
        let removed = self
            .db
            .delete("Available", &tuple![flight, seat])
            .expect("seat was just found");
        debug_assert!(removed);
        self.db
            .insert("Bookings", tuple![user, flight, seat])
            .expect("no duplicate users");
    }
}

/// Convenience for measurements: is `v` the string `s`?
#[allow(dead_code)]
fn is_str(v: &Value, s: &str) -> bool {
    v.as_str() == Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights::{build_database, FlightsConfig};

    fn client(rows: usize) -> IsClient {
        IsClient::new(build_database(&FlightsConfig {
            flights: 1,
            rows_per_flight: rows,
        }))
    }

    #[test]
    fn first_user_leaves_room_for_partner() {
        let mut c = client(2);
        let out = c.book("A", "B", 1);
        let seat = out.seat.unwrap();
        assert!(!out.next_to_partner);
        // The chosen seat has a free neighbour.
        let partner = c.book("B", "A", 1);
        assert!(partner.next_to_partner, "B joins A at {seat}");
    }

    #[test]
    fn fills_up_gracefully() {
        let mut c = client(1); // 3 seats
        assert!(c.book("A", "X", 1).seat.is_some());
        assert!(c.book("B", "Y", 1).seat.is_some());
        assert!(c.book("C", "Z", 1).seat.is_some());
        let out = c.book("D", "W", 1);
        assert!(out.seat.is_none(), "flight is full");
    }

    #[test]
    fn fragmentation_breaks_coordination() {
        // The IS weakness the paper measures: interleaved strangers take
        // each other's "reserved" neighbour seats. Row = A,B,C. U1 books
        // with free neighbour (gets 1A, neighbour 1B free). V1 (different
        // pair) also books seat-with-free-neighbour → 1B! Now U2 cannot
        // sit next to U1.
        let mut c = client(1);
        c.book("U1", "U2", 1);
        c.book("V1", "V2", 1);
        let u2 = c.book("U2", "U1", 1);
        assert!(!u2.next_to_partner, "fragmented row defeats IS");
    }

    #[test]
    fn read_booking_round_trips() {
        let mut c = client(2);
        assert_eq!(c.read_booking("A"), None);
        let out = c.book("A", "B", 1);
        let (f, s) = c.read_booking("A").unwrap();
        assert_eq!(f, 1);
        assert_eq!(Some(s), out.seat);
    }
}
