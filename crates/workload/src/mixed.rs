//! Mixed read/resource workloads (§5.3 "Mixed Workload").
//!
//! *"The non-resource transactions are read queries by users who had
//! earlier issued a resource transaction."* A mixed workload of `n` total
//! operations with read percentage `p` contains `n·p/100` reads
//! interleaved into a Random-order stream of resource transactions; each
//! read targets a user drawn uniformly from those who already booked.

use crate::entangled::Pair;
use crate::orders::{arrange, ArrivalOrder, Request};
use crate::rng::{SliceRandom, StdRng};

/// One operation of a mixed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Submit an entangled resource transaction.
    Book(Request),
    /// Read the named user's booking (collapses their pending state).
    Read {
        /// The reading user (booked earlier in the stream).
        user: String,
    },
    /// Peek at the named user's booking (§3.2.2 option 2): answered from
    /// one possible world through a delta view, never grounding anything.
    Peek {
        /// The peeking user (booked earlier in the stream).
        user: String,
    },
    /// All possible bookings of the named user (§3.2.2 option 1):
    /// bounded possible-worlds enumeration, never grounding anything.
    Possible {
        /// The queried user (booked earlier in the stream).
        user: String,
    },
    /// Scan the whole `Bookings` table — a read whose key range overlaps
    /// *every* partition, collapsing all pending state (the general read
    /// §3.2.2 warns causes many groundings).
    Scan,
}

impl Op {
    /// Is this a read (point, peek, possible or scan)?
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Op::Read { .. } | Op::Peek { .. } | Op::Possible { .. } | Op::Scan
        )
    }
}

/// Read-shape knobs of the mixed workload: what fraction of the reads are
/// collapsing point reads vs scans vs non-collapsing PEEK/POSSIBLE.
///
/// Percentages partition the read stream: each read rolls once for its
/// flavor — scan first (`scan_percent`), then the §3.2.2 mode
/// (`possible_percent`, then `peek_percent`, remainder = collapsing point
/// read). The default profile (all zeros) reproduces the classic
/// all-collapsing workload bit-for-bit per seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixedProfile {
    /// Percentage of reads that are whole-table scans (overlapping every
    /// partition) instead of per-user point reads.
    pub scan_percent: usize,
    /// Percentage of non-scan reads served with PEEK semantics.
    pub peek_percent: usize,
    /// Percentage of non-scan reads served as `SELECT POSSIBLE`
    /// (sampled sparsely in realistic profiles: world enumeration is the
    /// expensive read).
    pub possible_percent: usize,
}

impl MixedProfile {
    /// A read-mostly profile: most reads peek (no grounding), a thin
    /// slice samples the possible-worlds answer, a few still collapse.
    pub fn read_heavy() -> Self {
        MixedProfile {
            scan_percent: 0,
            peek_percent: 80,
            possible_percent: 5,
        }
    }
}

/// Build a mixed workload over `pairs` with `n_reads` read operations.
///
/// The resource stream is `Random`-ordered with `seed`; reads are placed
/// at uniform positions (never before the first booking) and each targets
/// a uniformly random earlier booker.
pub fn build_mixed_workload(pairs: &[Pair], n_reads: usize, seed: u64) -> Vec<Op> {
    build_mixed_workload_profiled(pairs, n_reads, seed, 0)
}

/// [`build_mixed_workload`] with a contention knob: `scan_percent` of the
/// reads become whole-table [`Op::Scan`]s instead of point reads.
///
/// A point read targets one user's booking — its key range overlaps (at
/// most) that user's partition, so disjoint point reads ground disjoint
/// partitions and parallelize. A scan's range overlaps every partition:
/// it serializes against all pending state. Sweeping `scan_percent` from
/// 0 to 100 moves the workload from disjoint to fully overlapping key
/// ranges.
pub fn build_mixed_workload_profiled(
    pairs: &[Pair],
    n_reads: usize,
    seed: u64,
    scan_percent: usize,
) -> Vec<Op> {
    build_mixed_workload_with(
        pairs,
        n_reads,
        seed,
        MixedProfile {
            scan_percent,
            ..MixedProfile::default()
        },
    )
}

/// [`build_mixed_workload_profiled`] with the full read-shape profile:
/// scans, collapsing point reads, and the non-collapsing PEEK/POSSIBLE
/// modes of §3.2.2.
pub fn build_mixed_workload_with(
    pairs: &[Pair],
    n_reads: usize,
    seed: u64,
    profile: MixedProfile,
) -> Vec<Op> {
    let MixedProfile {
        scan_percent,
        peek_percent,
        possible_percent,
    } = profile;
    let mut rng = StdRng::seed_from_u64(seed);
    let bookings = arrange(
        pairs,
        ArrivalOrder::Random {
            seed: seed ^ 0xB00C,
        },
    );
    let total = bookings.len() + n_reads;
    // Choose which slots are reads: a shuffled boolean mask whose first
    // slot is always a booking.
    let mut mask: Vec<bool> = std::iter::repeat_n(true, bookings.len())
        .chain(std::iter::repeat_n(false, n_reads))
        .collect();
    mask.shuffle(&mut rng);
    if let Some(first_book) = mask.iter().position(|&b| b) {
        mask.swap(0, first_book);
    }
    let mut ops = Vec::with_capacity(total);
    let mut booked: Vec<&str> = Vec::with_capacity(bookings.len());
    let mut next_booking = bookings.iter();
    for is_book in mask {
        if is_book {
            let r = next_booking.next().expect("mask has booking slots");
            booked.push(r.user.as_str());
            ops.push(Op::Book(r.clone()));
        } else if scan_percent > 0 && rng.gen_range(0..100) < scan_percent {
            // NOTE: each percent roll consumes an RNG draw, so profiled
            // workloads with non-zero knobs select different read targets
            // than the unprofiled stream. Zero knobs skip their rolls
            // entirely — build_mixed_workload's seeded sequences are
            // bit-identical to the pre-profile behavior.
            ops.push(Op::Scan);
        } else {
            // Safe: slot 0 is always a booking.
            let user = booked[rng.gen_range(0..booked.len())].to_string();
            let flavor = if peek_percent + possible_percent > 0 {
                rng.gen_range(0..100)
            } else {
                100 // zero knobs: no roll, always a collapsing read
            };
            if flavor < possible_percent {
                ops.push(Op::Possible { user });
            } else if flavor < possible_percent + peek_percent {
                ops.push(Op::Peek { user });
            } else {
                ops.push(Op::Read { user });
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entangled::make_pairs;
    use crate::flights::FlightsConfig;

    fn pairs() -> Vec<Pair> {
        make_pairs(
            &FlightsConfig {
                flights: 2,
                rows_per_flight: 10,
            },
            5,
        )
    }

    #[test]
    fn counts_and_first_slot() {
        let ops = build_mixed_workload(&pairs(), 7, 42);
        assert_eq!(ops.len(), 20 + 7);
        assert_eq!(ops.iter().filter(|o| o.is_read()).count(), 7);
        assert!(!ops[0].is_read());
    }

    #[test]
    fn reads_target_earlier_bookers() {
        let ops = build_mixed_workload(&pairs(), 10, 7);
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for op in &ops {
            match op {
                Op::Book(r) => {
                    seen.insert(r.user.as_str());
                }
                Op::Read { user } | Op::Peek { user } | Op::Possible { user } => {
                    assert!(seen.contains(user.as_str()), "read before booking");
                }
                Op::Scan => unreachable!("default profile has no scans"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            build_mixed_workload(&pairs(), 5, 1),
            build_mixed_workload(&pairs(), 5, 1)
        );
        assert_ne!(
            build_mixed_workload(&pairs(), 5, 1),
            build_mixed_workload(&pairs(), 5, 2)
        );
    }

    #[test]
    fn scan_percent_moves_reads_from_point_to_scan() {
        let all_point = build_mixed_workload_profiled(&pairs(), 10, 9, 0);
        assert!(all_point.iter().all(|o| !matches!(o, Op::Scan)));
        let all_scan = build_mixed_workload_profiled(&pairs(), 10, 9, 100);
        assert_eq!(
            all_scan.iter().filter(|o| matches!(o, Op::Scan)).count(),
            10
        );
        // Same seed, same slot placement: only the read flavor changes.
        assert_eq!(
            all_point.iter().filter(|o| o.is_read()).count(),
            all_scan.iter().filter(|o| o.is_read()).count(),
        );
    }

    #[test]
    fn read_heavy_profile_mixes_peek_and_possible() {
        let profile = MixedProfile::read_heavy();
        let ops = build_mixed_workload_with(&pairs(), 40, 11, profile);
        let peeks = ops.iter().filter(|o| matches!(o, Op::Peek { .. })).count();
        let possibles = ops
            .iter()
            .filter(|o| matches!(o, Op::Possible { .. }))
            .count();
        let collapsing = ops.iter().filter(|o| matches!(o, Op::Read { .. })).count();
        assert_eq!(ops.iter().filter(|o| o.is_read()).count(), 40);
        // 80% peek / 5% possible: peeks dominate, both flavors present.
        assert!(
            peeks > collapsing,
            "peeks {peeks} vs collapsing {collapsing}"
        );
        assert!(peeks >= 20);
        assert!(possibles >= 1);
        // PEEK/POSSIBLE targets are still earlier bookers.
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for op in &ops {
            match op {
                Op::Book(r) => {
                    seen.insert(r.user.as_str());
                }
                Op::Read { user } | Op::Peek { user } | Op::Possible { user } => {
                    assert!(seen.contains(user.as_str()));
                }
                Op::Scan => unreachable!("read_heavy has no scans"),
            }
        }
    }

    #[test]
    fn zero_profile_is_bit_identical_to_the_classic_stream() {
        assert_eq!(
            build_mixed_workload_with(&pairs(), 9, 4, MixedProfile::default()),
            build_mixed_workload(&pairs(), 9, 4),
        );
    }

    #[test]
    fn zero_reads_is_pure_random_order() {
        let ops = build_mixed_workload(&pairs(), 0, 3);
        assert_eq!(ops.len(), 20);
        assert!(ops.iter().all(|o| !o.is_read()));
    }
}
