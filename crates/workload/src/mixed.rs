//! Mixed read/resource workloads (§5.3 "Mixed Workload").
//!
//! *"The non-resource transactions are read queries by users who had
//! earlier issued a resource transaction."* A mixed workload of `n` total
//! operations with read percentage `p` contains `n·p/100` reads
//! interleaved into a Random-order stream of resource transactions; each
//! read targets a user drawn uniformly from those who already booked.

use crate::entangled::Pair;
use crate::orders::{arrange, ArrivalOrder, Request};
use crate::rng::{SliceRandom, StdRng};

/// One operation of a mixed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Submit an entangled resource transaction.
    Book(Request),
    /// Read the named user's booking (collapses their pending state).
    Read {
        /// The reading user (booked earlier in the stream).
        user: String,
    },
    /// Scan the whole `Bookings` table — a read whose key range overlaps
    /// *every* partition, collapsing all pending state (the general read
    /// §3.2.2 warns causes many groundings).
    Scan,
}

impl Op {
    /// Is this a read (point or scan)?
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Scan)
    }
}

/// Build a mixed workload over `pairs` with `n_reads` read operations.
///
/// The resource stream is `Random`-ordered with `seed`; reads are placed
/// at uniform positions (never before the first booking) and each targets
/// a uniformly random earlier booker.
pub fn build_mixed_workload(pairs: &[Pair], n_reads: usize, seed: u64) -> Vec<Op> {
    build_mixed_workload_profiled(pairs, n_reads, seed, 0)
}

/// [`build_mixed_workload`] with a contention knob: `scan_percent` of the
/// reads become whole-table [`Op::Scan`]s instead of point reads.
///
/// A point read targets one user's booking — its key range overlaps (at
/// most) that user's partition, so disjoint point reads ground disjoint
/// partitions and parallelize. A scan's range overlaps every partition:
/// it serializes against all pending state. Sweeping `scan_percent` from
/// 0 to 100 moves the workload from disjoint to fully overlapping key
/// ranges.
pub fn build_mixed_workload_profiled(
    pairs: &[Pair],
    n_reads: usize,
    seed: u64,
    scan_percent: usize,
) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bookings = arrange(
        pairs,
        ArrivalOrder::Random {
            seed: seed ^ 0xB00C,
        },
    );
    let total = bookings.len() + n_reads;
    // Choose which slots are reads: a shuffled boolean mask whose first
    // slot is always a booking.
    let mut mask: Vec<bool> = std::iter::repeat_n(true, bookings.len())
        .chain(std::iter::repeat_n(false, n_reads))
        .collect();
    mask.shuffle(&mut rng);
    if let Some(first_book) = mask.iter().position(|&b| b) {
        mask.swap(0, first_book);
    }
    let mut ops = Vec::with_capacity(total);
    let mut booked: Vec<&str> = Vec::with_capacity(bookings.len());
    let mut next_booking = bookings.iter();
    for is_book in mask {
        if is_book {
            let r = next_booking.next().expect("mask has booking slots");
            booked.push(r.user.as_str());
            ops.push(Op::Book(r.clone()));
        } else if scan_percent > 0 && rng.gen_range(0..100) < scan_percent {
            // NOTE: the percent roll consumes an RNG draw, so profiled
            // workloads with scan_percent > 0 select different read
            // targets than the unprofiled stream. scan_percent == 0 skips
            // the roll entirely — build_mixed_workload's seeded sequences
            // are bit-identical to the pre-profile behavior.
            ops.push(Op::Scan);
        } else {
            // Safe: slot 0 is always a booking.
            let user = booked[rng.gen_range(0..booked.len())];
            ops.push(Op::Read {
                user: user.to_string(),
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entangled::make_pairs;
    use crate::flights::FlightsConfig;

    fn pairs() -> Vec<Pair> {
        make_pairs(
            &FlightsConfig {
                flights: 2,
                rows_per_flight: 10,
            },
            5,
        )
    }

    #[test]
    fn counts_and_first_slot() {
        let ops = build_mixed_workload(&pairs(), 7, 42);
        assert_eq!(ops.len(), 20 + 7);
        assert_eq!(ops.iter().filter(|o| o.is_read()).count(), 7);
        assert!(!ops[0].is_read());
    }

    #[test]
    fn reads_target_earlier_bookers() {
        let ops = build_mixed_workload(&pairs(), 10, 7);
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for op in &ops {
            match op {
                Op::Book(r) => {
                    seen.insert(r.user.as_str());
                }
                Op::Read { user } => {
                    assert!(seen.contains(user.as_str()), "read before booking");
                }
                Op::Scan => unreachable!("default profile has no scans"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            build_mixed_workload(&pairs(), 5, 1),
            build_mixed_workload(&pairs(), 5, 1)
        );
        assert_ne!(
            build_mixed_workload(&pairs(), 5, 1),
            build_mixed_workload(&pairs(), 5, 2)
        );
    }

    #[test]
    fn scan_percent_moves_reads_from_point_to_scan() {
        let all_point = build_mixed_workload_profiled(&pairs(), 10, 9, 0);
        assert!(all_point.iter().all(|o| !matches!(o, Op::Scan)));
        let all_scan = build_mixed_workload_profiled(&pairs(), 10, 9, 100);
        assert_eq!(
            all_scan.iter().filter(|o| matches!(o, Op::Scan)).count(),
            10
        );
        // Same seed, same slot placement: only the read flavor changes.
        assert_eq!(
            all_point.iter().filter(|o| o.is_read()).count(),
            all_scan.iter().filter(|o| o.is_read()).count(),
        );
    }

    #[test]
    fn zero_reads_is_pure_random_order() {
        let ops = build_mixed_workload(&pairs(), 0, 3);
        assert_eq!(ops.len(), 20);
        assert!(ops.iter().all(|o| !o.is_read()));
    }
}
