//! Per-client statement streams covering the full statement surface —
//! the reusable op generators behind the deterministic simulator
//! (`qdb-sim`).
//!
//! [`build_client_streams`] deals each logical client a seeded stream of
//! [`SimOp`]s: CHOOSE bookings (solo and entangled), the three read modes
//! of §3.2.2 (collapse / PEEK / POSSIBLE), explicit GROUND and GROUND
//! ALL, CHECKPOINT, and blind INSERT/DELETE writes. Generation is a pure
//! function of `(config, seed)`: ops reference *positions* ("the n-th
//! earlier booker", "the n-th pending transaction") rather than concrete
//! ids, so the generator never needs to know how a run actually unfolds —
//! the driver resolves positions against live state, keeping the whole
//! run replayable from the seed alone.

use crate::flights::FlightsConfig;
use crate::rng::StdRng;

/// One statement of a simulated client session. Position-valued fields
/// (`target`, `nth`) are resolved by the driver modulo the live
/// population at execution time; when that population is empty the op
/// degrades to a recorded no-op, so every stream is executable against
/// every interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOp {
    /// Submit a solo CHOOSE booking on the flight with this index.
    Book {
        /// Index into [`FlightsConfig::flight_numbers`].
        flight: usize,
    },
    /// Submit an entangled CHOOSE booking (§5.1): sit next to the
    /// `partner`-th earlier booker of the same flight (falls back to a
    /// solo booking when that flight has no earlier booker).
    BookEntangled {
        /// Index into [`FlightsConfig::flight_numbers`].
        flight: usize,
        /// Position among the flight's earlier bookers.
        partner: usize,
    },
    /// Collapse-read the `target`-th booked user's rows (§3.2.2 option 3).
    Read {
        /// Position among users who booked earlier in the run.
        target: usize,
    },
    /// PEEK at the `target`-th booked user (§3.2.2 option 2).
    Peek {
        /// Position among users who booked earlier in the run.
        target: usize,
    },
    /// SELECT POSSIBLE for the `target`-th booked user (§3.2.2 option 1).
    Possible {
        /// Position among users who booked earlier in the run.
        target: usize,
    },
    /// Explicitly GROUND the `nth` currently-pending transaction.
    Ground {
        /// Position in the sorted pending-id list.
        nth: usize,
    },
    /// GROUND ALL.
    GroundAll,
    /// CHECKPOINT (appends a marker and drains the group-commit buffer).
    Checkpoint,
    /// Blind INSERT of a fresh audit row (tag chosen by the driver).
    AuditInsert,
    /// Blind DELETE of the `nth` live audit row.
    AuditDelete {
        /// Position in the live audit-tag list.
        nth: usize,
    },
    /// Blind INSERT of a brand-new seat on this flight (grows capacity).
    SeatAdd {
        /// Index into [`FlightsConfig::flight_numbers`].
        flight: usize,
    },
    /// Blind DELETE of the `nth` currently-available seat of this flight
    /// (write admission may reject it to protect pending state).
    SeatRemove {
        /// Index into [`FlightsConfig::flight_numbers`].
        flight: usize,
        /// Position in the flight's available-seat list.
        nth: usize,
    },
}

impl SimOp {
    /// Is this op a CHOOSE submission?
    pub fn is_booking(&self) -> bool {
        matches!(self, SimOp::Book { .. } | SimOp::BookEntangled { .. })
    }
}

/// Statement mix, in percent of the stream. `book + read + peek +
/// possible + ground + ground_all + checkpoint + audit_insert +
/// audit_delete + seat_add + seat_remove` must be ≤ 100; any remainder
/// falls through to PEEK (the cheapest read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProfile {
    /// CHOOSE bookings (solo or entangled).
    pub book: usize,
    /// Of the bookings, how many percent are entangled (§5.1).
    pub entangled_percent: usize,
    /// Collapsing point reads.
    pub read: usize,
    /// PEEK reads.
    pub peek: usize,
    /// SELECT POSSIBLE reads.
    pub possible: usize,
    /// Explicit per-transaction GROUND.
    pub ground: usize,
    /// GROUND ALL.
    pub ground_all: usize,
    /// CHECKPOINT.
    pub checkpoint: usize,
    /// Blind audit inserts.
    pub audit_insert: usize,
    /// Blind audit deletes.
    pub audit_delete: usize,
    /// Blind seat additions.
    pub seat_add: usize,
    /// Blind seat removals.
    pub seat_remove: usize,
}

impl Default for StreamProfile {
    fn default() -> Self {
        StreamProfile {
            book: 30,
            entangled_percent: 50,
            read: 8,
            peek: 14,
            possible: 8,
            ground: 10,
            ground_all: 4,
            checkpoint: 3,
            audit_insert: 8,
            audit_delete: 5,
            seat_add: 4,
            seat_remove: 3,
        }
    }
}

/// Deal `clients` seeded per-client streams of `ops_per_client` ops each.
/// The first op of client 0 is always a booking, so position-valued reads
/// have a target as soon as any interleaving starts. Streams are a pure
/// function of the arguments — same inputs, same streams, bit for bit.
pub fn build_client_streams(
    cfg: &FlightsConfig,
    clients: usize,
    ops_per_client: usize,
    seed: u64,
    profile: &StreamProfile,
) -> Vec<Vec<SimOp>> {
    let p = *profile;
    let cum = |upto: usize| -> usize {
        [
            p.book,
            p.read,
            p.possible,
            p.ground,
            p.ground_all,
            p.checkpoint,
            p.audit_insert,
            p.audit_delete,
            p.seat_add,
            p.seat_remove,
        ]
        .iter()
        .take(upto)
        .sum()
    };
    (0..clients)
        .map(|c| {
            // Decorrelate client streams with a splitmix-style stride.
            let mut rng =
                StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (0..ops_per_client)
                .map(|i| {
                    if c == 0 && i == 0 {
                        return SimOp::Book { flight: 0 };
                    }
                    let flight = rng.gen_range(0..cfg.flights.max(1));
                    let pos = rng.gen_range(0..4096);
                    let roll = rng.gen_range(0..100);
                    if roll < cum(1) {
                        if rng.gen_range(0..100) < p.entangled_percent {
                            SimOp::BookEntangled {
                                flight,
                                partner: pos,
                            }
                        } else {
                            SimOp::Book { flight }
                        }
                    } else if roll < cum(2) {
                        SimOp::Read { target: pos }
                    } else if roll < cum(3) {
                        SimOp::Possible { target: pos }
                    } else if roll < cum(4) {
                        SimOp::Ground { nth: pos }
                    } else if roll < cum(5) {
                        SimOp::GroundAll
                    } else if roll < cum(6) {
                        SimOp::Checkpoint
                    } else if roll < cum(7) {
                        SimOp::AuditInsert
                    } else if roll < cum(8) {
                        SimOp::AuditDelete { nth: pos }
                    } else if roll < cum(9) {
                        SimOp::SeatAdd { flight }
                    } else if roll < cum(10) {
                        SimOp::SeatRemove { flight, nth: pos }
                    } else if roll < cum(10) + p.peek {
                        SimOp::Peek { target: pos }
                    } else {
                        // Remainder falls through to the cheapest read.
                        SimOp::Peek { target: pos }
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlightsConfig {
        FlightsConfig {
            flights: 2,
            rows_per_flight: 4,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_client_streams(&cfg(), 4, 50, 7, &StreamProfile::default());
        let b = build_client_streams(&cfg(), 4, 50, 7, &StreamProfile::default());
        assert_eq!(a, b);
        let c = build_client_streams(&cfg(), 4, 50, 8, &StreamProfile::default());
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_and_first_op() {
        let streams = build_client_streams(&cfg(), 3, 40, 42, &StreamProfile::default());
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|s| s.len() == 40));
        assert_eq!(streams[0][0], SimOp::Book { flight: 0 });
    }

    #[test]
    fn default_profile_covers_the_full_statement_surface() {
        let streams = build_client_streams(&cfg(), 8, 400, 1, &StreamProfile::default());
        let all: Vec<&SimOp> = streams.iter().flatten().collect();
        let has = |f: fn(&SimOp) -> bool| all.iter().any(|op| f(op));
        assert!(has(|o| matches!(o, SimOp::Book { .. })));
        assert!(has(|o| matches!(o, SimOp::BookEntangled { .. })));
        assert!(has(|o| matches!(o, SimOp::Read { .. })));
        assert!(has(|o| matches!(o, SimOp::Peek { .. })));
        assert!(has(|o| matches!(o, SimOp::Possible { .. })));
        assert!(has(|o| matches!(o, SimOp::Ground { .. })));
        assert!(has(|o| matches!(o, SimOp::GroundAll)));
        assert!(has(|o| matches!(o, SimOp::Checkpoint)));
        assert!(has(|o| matches!(o, SimOp::AuditInsert)));
        assert!(has(|o| matches!(o, SimOp::AuditDelete { .. })));
        assert!(has(|o| matches!(o, SimOp::SeatAdd { .. })));
        assert!(has(|o| matches!(o, SimOp::SeatRemove { .. })));
    }

    #[test]
    fn flight_indexes_stay_in_range() {
        let streams = build_client_streams(&cfg(), 4, 200, 3, &StreamProfile::default());
        for op in streams.iter().flatten() {
            match op {
                SimOp::Book { flight }
                | SimOp::BookEntangled { flight, .. }
                | SimOp::SeatAdd { flight }
                | SimOp::SeatRemove { flight, .. } => assert!(*flight < 2),
                _ => {}
            }
        }
    }
}
