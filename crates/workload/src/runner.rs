//! The experiment runner: executes a workload against the quantum
//! database or the IS baseline and collects the measurements the paper
//! reports (cumulative per-transaction time, total time, read/update time
//! split, coordination percentage, maximum pending transactions).

use std::time::{Duration, Instant};

use qdb_core::{QuantumDb, QuantumDbConfig};
use qdb_logic::parse_query;

use crate::entangled::{entangled_booking, make_pairs, Pair};
use crate::flights::{build_database, install, FlightsConfig};
use crate::is_baseline::IsClient;
use crate::metrics::{coordination_stats, CoordStats};
use crate::mixed::{build_mixed_workload, Op};
use crate::orders::{arrange, ArrivalOrder};

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Database shape.
    pub flights: FlightsConfig,
    /// Coordination pairs per flight.
    pub pairs_per_flight: usize,
    /// Arrival order of the resource transactions.
    pub order: ArrivalOrder,
    /// Read operations (mixed workload); `0` = pure resource workload.
    pub n_reads: usize,
    /// Workload seed (shuffles, read placement).
    pub seed: u64,
    /// Engine configuration (contains `k`).
    pub engine: QuantumDbConfig,
}

impl RunConfig {
    /// Pure resource workload over `flights` with the given order and `k`.
    pub fn resource_only(
        flights: FlightsConfig,
        pairs_per_flight: usize,
        order: ArrivalOrder,
        k: usize,
    ) -> Self {
        RunConfig {
            flights,
            pairs_per_flight,
            order,
            n_reads: 0,
            seed: 0xC1DE,
            engine: QuantumDbConfig::with_k(k),
        }
    }

    /// Number of resource transactions.
    pub fn n_transactions(&self) -> usize {
        self.flights.flights * self.pairs_per_flight * 2
    }
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label ("QuantumDB k=40", "IS", …).
    pub label: String,
    /// Cumulative elapsed microseconds after each operation (Fig. 5's
    /// y-axis against operation index).
    pub cumulative_micros: Vec<u64>,
    /// Total wall-clock time.
    pub total: Duration,
    /// Time spent executing read operations (Fig. 8).
    pub read_time: Duration,
    /// Time spent executing resource transactions / updates (Fig. 8).
    pub update_time: Duration,
    /// Coordination outcome (Figs. 6, 9; Table 2).
    pub coord: CoordStats,
    /// Highest number of simultaneously pending transactions (Table 1).
    pub max_pending: u64,
    /// Aborted resource transactions.
    pub aborted: u64,
}

impl RunResult {
    /// Coordination percentage.
    pub fn coordination_percent(&self) -> f64 {
        self.coord.percent()
    }
}

/// Run a workload against the quantum database.
pub fn run_quantum(cfg: &RunConfig) -> RunResult {
    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let ops = ops_for(cfg, &pairs);
    let mut qdb = QuantumDb::new(cfg.engine.clone()).expect("engine construction");
    install(&mut qdb, &cfg.flights).expect("schema install");

    let mut cumulative = Vec::with_capacity(ops.len());
    let mut read_time = Duration::ZERO;
    let mut update_time = Duration::ZERO;
    let start = Instant::now();
    for op in &ops {
        let t0 = Instant::now();
        match op {
            Op::Book(r) => {
                let txn = entangled_booking(&r.user, &r.partner, r.flight);
                let _ = qdb.submit(&txn).expect("engine healthy");
                update_time += t0.elapsed();
            }
            Op::Read { user } => {
                let q = parse_query(&format!("Bookings('{user}', f, s)"))
                    .expect("query parses");
                let _ = qdb.read_parsed(&q, None).expect("engine healthy");
                read_time += t0.elapsed();
            }
        }
        cumulative.push(start.elapsed().as_micros() as u64);
    }
    // Fix any transactions still pending (partners all arrived, so under
    // partner-arrival grounding this is usually a no-op; with it disabled
    // this is where coordination happens).
    let t0 = Instant::now();
    qdb.ground_all().expect("invariant");
    update_time += t0.elapsed();
    let total = start.elapsed();

    let coord = coordination_stats(qdb.database(), &pairs, cfg.flights.rows_per_flight);
    RunResult {
        label: format!("QuantumDB k={}", cfg.engine.k),
        cumulative_micros: cumulative,
        total,
        read_time,
        update_time,
        coord,
        max_pending: qdb.metrics().max_pending,
        aborted: qdb.metrics().aborted,
    }
}

/// Run the same workload against the intelligent-social baseline.
pub fn run_is(cfg: &RunConfig) -> RunResult {
    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let ops = ops_for(cfg, &pairs);
    let mut client = IsClient::new(build_database(&cfg.flights));

    let mut cumulative = Vec::with_capacity(ops.len());
    let mut read_time = Duration::ZERO;
    let mut update_time = Duration::ZERO;
    let mut failures = 0u64;
    let start = Instant::now();
    for op in &ops {
        let t0 = Instant::now();
        match op {
            Op::Book(r) => {
                let out = client.book(&r.user, &r.partner, r.flight);
                if out.seat.is_none() {
                    failures += 1;
                }
                update_time += t0.elapsed();
            }
            Op::Read { user } => {
                let _ = client.read_booking(user);
                read_time += t0.elapsed();
            }
        }
        cumulative.push(start.elapsed().as_micros() as u64);
    }
    let total = start.elapsed();
    let coord = coordination_stats(client.database(), &pairs, cfg.flights.rows_per_flight);
    RunResult {
        label: "Intelligent Social (IS)".to_string(),
        cumulative_micros: cumulative,
        total,
        read_time,
        update_time,
        coord,
        max_pending: 0, // IS never defers
        aborted: failures,
    }
}

fn ops_for(cfg: &RunConfig, pairs: &[Pair]) -> Vec<Op> {
    if cfg.n_reads == 0 {
        arrange(pairs, cfg.order).into_iter().map(Op::Book).collect()
    } else {
        build_mixed_workload(pairs, cfg.n_reads, cfg.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke configuration: 1 flight × 4 rows (12 seats), 6 pairs.
    fn small(order: ArrivalOrder, k: usize) -> RunConfig {
        RunConfig::resource_only(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            order,
            k,
        )
    }

    #[test]
    fn quantum_achieves_full_coordination_on_small_alternate() {
        let res = run_quantum(&small(ArrivalOrder::Alternate, 61));
        assert_eq!(res.aborted, 0);
        // Max coordination: min(2·6, 2·4) = 8 users.
        assert_eq!(res.coord.max_possible, 8);
        assert_eq!(res.coord.coordinated_users, 8);
        assert!((res.coordination_percent() - 100.0).abs() < 1e-9);
        assert_eq!(res.cumulative_micros.len(), 12);
    }

    #[test]
    fn quantum_beats_is_on_random_order() {
        let q = run_quantum(&small(ArrivalOrder::Random { seed: 11 }, 61));
        let is = run_is(&small(ArrivalOrder::Random { seed: 11 }, 61));
        assert!(
            q.coordination_percent() >= is.coordination_percent(),
            "quantum {:.1}% < IS {:.1}%",
            q.coordination_percent(),
            is.coordination_percent()
        );
        assert!((q.coordination_percent() - 100.0).abs() < 1e-9);
        // Everyone is seated in both systems (capacity suffices).
        assert_eq!(q.coord.seated_users, 12);
        assert_eq!(is.coord.seated_users, 12);
    }

    #[test]
    fn max_pending_tracks_table1_shape() {
        let alt = run_quantum(&small(ArrivalOrder::Alternate, 61));
        let ord = run_quantum(&small(ArrivalOrder::InOrder, 61));
        // Alternate keeps at most 1 pending; InOrder peaks near N/2 = 6.
        assert!(alt.max_pending <= 1, "alternate max_pending = {}", alt.max_pending);
        assert!(ord.max_pending >= 5, "in-order max_pending = {}", ord.max_pending);
    }

    #[test]
    fn mixed_reads_reduce_coordination() {
        let mut pure = small(ArrivalOrder::Random { seed: 5 }, 61);
        pure.seed = 5;
        let mut mixed = pure.clone();
        mixed.n_reads = 10;
        let p = run_quantum(&pure);
        let m = run_quantum(&mixed);
        assert!(
            m.coordination_percent() <= p.coordination_percent(),
            "reads must not increase coordination"
        );
        assert!(m.read_time > Duration::ZERO);
    }

    #[test]
    fn small_k_forces_grounding() {
        let res = run_quantum(&small(ArrivalOrder::InOrder, 2));
        // k = 2 on an in-order workload forces early grounding, so the
        // pending high-water mark stays at k... +0 tolerance.
        assert!(res.max_pending <= 3, "max_pending = {}", res.max_pending);
        assert_eq!(res.aborted, 0, "k-grounding must not cause aborts");
    }
}
