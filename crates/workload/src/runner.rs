//! The experiment runner: executes a workload against the quantum
//! database or the IS baseline and collects the measurements the paper
//! reports (cumulative per-transaction time, total time, read/update time
//! split, coordination percentage, maximum pending transactions).
//!
//! The quantum runner drives the engine exclusively through the unified
//! statement API: a [`Session`] is opened on the shared handle, the two
//! hot statements (the entangled booking and the per-user read) are
//! prepared **once**, and the workload loop only binds parameters and
//! runs. [`RunResult::parses`] exposes the engine's parse counter so that
//! benchmarks can verify the hot loop never re-enters the parser.

use std::time::{Duration, Instant};

use qdb_core::{Histogram, QuantumDb, QuantumDbConfig, Session};
use qdb_storage::Value;

use crate::entangled::{make_pairs, Pair};
use crate::flights::{build_database, install, FlightsConfig};
use crate::is_baseline::IsClient;
use crate::metrics::{coordination_stats, CoordStats};
use crate::mixed::Op;
use crate::orders::{arrange, ArrivalOrder};

/// The §5.1 entangled booking as a prepared statement. Positional
/// parameters, in order: flight (body), partner, flight (partner's
/// booking), flight (delete), user, flight (insert).
pub const BOOKING_SQL: &str = "\
    SELECT @s \
    FROM Available(?, @s), \
         OPTIONAL Bookings(?, ?, @s2), \
         OPTIONAL Adjacent(@s, @s2) \
    CHOOSE 1 \
    FOLLOWED BY ( \
        DELETE (?, @s) FROM Available; \
        INSERT (?, ?, @s) INTO Bookings; \
    )";

/// The mixed-workload read (one parameter: the reading user).
pub const READ_SQL: &str = "SELECT @f, @s FROM Bookings(?, @f, @s)";

/// The mixed-workload whole-table scan (overlaps every partition).
pub const SCAN_SQL: &str = "SELECT @n, @f, @s FROM Bookings(@n, @f, @s)";

/// The non-collapsing peek read (§3.2.2 option 2; one parameter: the
/// peeking user). Served through the engine's delta-view path — never
/// grounds, never clones.
pub const PEEK_SQL: &str = "SELECT PEEK @f, @s FROM Bookings(?, @f, @s)";

/// The all-possible-values read (§3.2.2 option 1; one parameter). The
/// `LIMIT` bounds the possible-worlds enumeration.
pub const POSSIBLE_SQL: &str = "SELECT POSSIBLE @f, @s FROM Bookings(?, @f, @s) LIMIT 32";

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Database shape.
    pub flights: FlightsConfig,
    /// Coordination pairs per flight.
    pub pairs_per_flight: usize,
    /// Arrival order of the resource transactions.
    pub order: ArrivalOrder,
    /// Read operations (mixed workload); `0` = pure resource workload.
    pub n_reads: usize,
    /// Percentage of reads that are whole-table scans (overlapping key
    /// ranges) instead of per-user point reads (disjoint key ranges).
    pub scan_percent: usize,
    /// Percentage of non-scan reads served with PEEK semantics (the
    /// non-collapsing delta-view read).
    pub peek_percent: usize,
    /// Percentage of non-scan reads served as `SELECT POSSIBLE`
    /// (bounded possible-worlds sampling).
    pub possible_percent: usize,
    /// Workload seed (shuffles, read placement).
    pub seed: u64,
    /// Engine configuration (contains `k`).
    pub engine: QuantumDbConfig,
}

impl RunConfig {
    /// Pure resource workload over `flights` with the given order and `k`.
    pub fn resource_only(
        flights: FlightsConfig,
        pairs_per_flight: usize,
        order: ArrivalOrder,
        k: usize,
    ) -> Self {
        RunConfig {
            flights,
            pairs_per_flight,
            order,
            n_reads: 0,
            scan_percent: 0,
            peek_percent: 0,
            possible_percent: 0,
            seed: 0xC1DE,
            engine: QuantumDbConfig::with_k(k),
        }
    }

    /// Number of resource transactions.
    pub fn n_transactions(&self) -> usize {
        self.flights.flights * self.pairs_per_flight * 2
    }
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label ("QuantumDB k=40", "IS", …).
    pub label: String,
    /// Cumulative elapsed microseconds after each operation (Fig. 5's
    /// y-axis against operation index).
    pub cumulative_micros: Vec<u64>,
    /// Total wall-clock time.
    pub total: Duration,
    /// Time spent executing read operations (Fig. 8).
    pub read_time: Duration,
    /// Time spent executing resource transactions / updates (Fig. 8).
    pub update_time: Duration,
    /// Coordination outcome (Figs. 6, 9; Table 2).
    pub coord: CoordStats,
    /// Highest number of simultaneously pending transactions (Table 1).
    pub max_pending: u64,
    /// Aborted resource transactions.
    pub aborted: u64,
    /// SQL parser entries over the whole run (prepared statements keep
    /// this at 2 — one per hot statement — regardless of workload size).
    pub parses: u64,
    /// Per-operation latency distribution of read operations
    /// (p50/p90/p99/p999/max, nanoseconds).
    pub read_latency: qdb_core::HistSummary,
    /// Per-operation latency distribution of updates (bookings plus the
    /// final ground-all).
    pub update_latency: qdb_core::HistSummary,
}

impl RunResult {
    /// Coordination percentage.
    pub fn coordination_percent(&self) -> f64 {
        self.coord.percent()
    }
}

/// Run a workload against the quantum database through the statement API.
pub fn run_quantum(cfg: &RunConfig) -> RunResult {
    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let ops = ops_for(cfg, &pairs);
    let mut qdb = QuantumDb::new(cfg.engine.clone()).expect("engine construction");
    install(&mut qdb, &cfg.flights).expect("schema install");
    let shared = qdb.into_shared();
    let session: Session = shared.session();

    // Parse the hot statements once; the loop only binds and runs. The
    // scan/peek/possible statements are only prepared when the workload
    // contains such ops, keeping the parse count at exactly two for the
    // classic workloads.
    let book = session.prepare(BOOKING_SQL).expect("booking SQL parses");
    let read = session.prepare(READ_SQL).expect("read SQL parses");
    let scan = ops
        .iter()
        .any(|o| matches!(o, Op::Scan))
        .then(|| session.prepare(SCAN_SQL).expect("scan SQL parses"));
    let peek = ops
        .iter()
        .any(|o| matches!(o, Op::Peek { .. }))
        .then(|| session.prepare(PEEK_SQL).expect("peek SQL parses"));
    let possible = ops
        .iter()
        .any(|o| matches!(o, Op::Possible { .. }))
        .then(|| session.prepare(POSSIBLE_SQL).expect("possible SQL parses"));

    let mut cumulative = Vec::with_capacity(ops.len());
    let mut read_time = Duration::ZERO;
    let mut update_time = Duration::ZERO;
    let read_hist = Histogram::new();
    let update_hist = Histogram::new();
    let start = Instant::now();
    for op in &ops {
        let t0 = Instant::now();
        match op {
            Op::Book(r) => {
                let flight = Value::from(r.flight);
                let _ = book
                    .bind(&[
                        flight.clone(),
                        Value::from(r.partner.as_str()),
                        flight.clone(),
                        flight.clone(),
                        Value::from(r.user.as_str()),
                        flight,
                    ])
                    .expect("booking params bind")
                    .run()
                    .expect("engine healthy");
                let dt = t0.elapsed();
                update_hist.record_duration(dt);
                update_time += dt;
            }
            Op::Read { user } => {
                let _ = read
                    .bind(&[Value::from(user.as_str())])
                    .expect("read param binds")
                    .run()
                    .expect("engine healthy");
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
            Op::Peek { user } => {
                let _ = peek
                    .as_ref()
                    .expect("peek prepared when workload has peeks")
                    .bind(&[Value::from(user.as_str())])
                    .expect("peek param binds")
                    .run()
                    .expect("engine healthy");
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
            Op::Possible { user } => {
                let _ = possible
                    .as_ref()
                    .expect("possible prepared when workload has possibles")
                    .bind(&[Value::from(user.as_str())])
                    .expect("possible param binds")
                    .run()
                    .expect("engine healthy");
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
            Op::Scan => {
                let _ = scan
                    .as_ref()
                    .expect("scan prepared when workload has scans")
                    .run()
                    .expect("engine healthy");
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
        }
        cumulative.push(start.elapsed().as_micros() as u64);
    }
    // Fix any transactions still pending (partners all arrived, so under
    // partner-arrival grounding this is usually a no-op; with it disabled
    // this is where coordination happens).
    let t0 = Instant::now();
    shared.ground_all().expect("invariant");
    let dt = t0.elapsed();
    update_hist.record_duration(dt);
    update_time += dt;
    let total = start.elapsed();

    let metrics = shared.metrics();
    let coord =
        shared.with_database(|db| coordination_stats(db, &pairs, cfg.flights.rows_per_flight));
    RunResult {
        label: format!("QuantumDB k={}", cfg.engine.k),
        cumulative_micros: cumulative,
        total,
        read_time,
        update_time,
        coord,
        max_pending: metrics.max_pending,
        aborted: metrics.aborted,
        parses: metrics.parses,
        read_latency: read_hist.summary(),
        update_latency: update_hist.summary(),
    }
}

/// Run the same workload against the intelligent-social baseline.
pub fn run_is(cfg: &RunConfig) -> RunResult {
    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let ops = ops_for(cfg, &pairs);
    let mut client = IsClient::new(build_database(&cfg.flights));

    let mut cumulative = Vec::with_capacity(ops.len());
    let mut read_time = Duration::ZERO;
    let mut update_time = Duration::ZERO;
    let read_hist = Histogram::new();
    let update_hist = Histogram::new();
    let mut failures = 0u64;
    let start = Instant::now();
    for op in &ops {
        let t0 = Instant::now();
        match op {
            Op::Book(r) => {
                let out = client.book(&r.user, &r.partner, r.flight);
                if out.seat.is_none() {
                    failures += 1;
                }
                let dt = t0.elapsed();
                update_hist.record_duration(dt);
                update_time += dt;
            }
            Op::Read { user } | Op::Peek { user } | Op::Possible { user } => {
                // IS assigns eagerly: every read flavor is a plain lookup.
                let _ = client.read_booking(user);
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
            Op::Scan => {
                let _ = client.scan_bookings();
                let dt = t0.elapsed();
                read_hist.record_duration(dt);
                read_time += dt;
            }
        }
        cumulative.push(start.elapsed().as_micros() as u64);
    }
    let total = start.elapsed();
    let coord = coordination_stats(client.database(), &pairs, cfg.flights.rows_per_flight);
    RunResult {
        label: "Intelligent Social (IS)".to_string(),
        cumulative_micros: cumulative,
        total,
        read_time,
        update_time,
        coord,
        max_pending: 0, // IS never defers
        aborted: failures,
        parses: 0, // IS bypasses the SQL front end entirely
        read_latency: read_hist.summary(),
        update_latency: update_hist.summary(),
    }
}

fn ops_for(cfg: &RunConfig, pairs: &[Pair]) -> Vec<Op> {
    if cfg.n_reads == 0 {
        arrange(pairs, cfg.order)
            .into_iter()
            .map(Op::Book)
            .collect()
    } else {
        crate::mixed::build_mixed_workload_with(
            pairs,
            cfg.n_reads,
            cfg.seed,
            crate::mixed::MixedProfile {
                scan_percent: cfg.scan_percent,
                peek_percent: cfg.peek_percent,
                possible_percent: cfg.possible_percent,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke configuration: 1 flight × 4 rows (12 seats), 6 pairs.
    fn small(order: ArrivalOrder, k: usize) -> RunConfig {
        RunConfig::resource_only(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            order,
            k,
        )
    }

    #[test]
    fn quantum_achieves_full_coordination_on_small_alternate() {
        let res = run_quantum(&small(ArrivalOrder::Alternate, 61));
        assert_eq!(res.aborted, 0);
        // Max coordination: min(2·6, 2·4) = 8 users.
        assert_eq!(res.coord.max_possible, 8);
        assert_eq!(res.coord.coordinated_users, 8);
        assert!((res.coordination_percent() - 100.0).abs() < 1e-9);
        assert_eq!(res.cumulative_micros.len(), 12);
    }

    #[test]
    fn quantum_beats_is_on_random_order() {
        let q = run_quantum(&small(ArrivalOrder::Random { seed: 11 }, 61));
        let is = run_is(&small(ArrivalOrder::Random { seed: 11 }, 61));
        assert!(
            q.coordination_percent() >= is.coordination_percent(),
            "quantum {:.1}% < IS {:.1}%",
            q.coordination_percent(),
            is.coordination_percent()
        );
        assert!((q.coordination_percent() - 100.0).abs() < 1e-9);
        // Everyone is seated in both systems (capacity suffices).
        assert_eq!(q.coord.seated_users, 12);
        assert_eq!(is.coord.seated_users, 12);
    }

    #[test]
    fn max_pending_tracks_table1_shape() {
        let alt = run_quantum(&small(ArrivalOrder::Alternate, 61));
        let ord = run_quantum(&small(ArrivalOrder::InOrder, 61));
        // Alternate keeps at most 1 pending; InOrder peaks near N/2 = 6.
        assert!(
            alt.max_pending <= 1,
            "alternate max_pending = {}",
            alt.max_pending
        );
        assert!(
            ord.max_pending >= 5,
            "in-order max_pending = {}",
            ord.max_pending
        );
    }

    #[test]
    fn mixed_reads_reduce_coordination() {
        let mut pure = small(ArrivalOrder::Random { seed: 5 }, 61);
        pure.seed = 5;
        let mut mixed = pure.clone();
        mixed.n_reads = 10;
        let p = run_quantum(&pure);
        let m = run_quantum(&mixed);
        assert!(
            m.coordination_percent() <= p.coordination_percent(),
            "reads must not increase coordination"
        );
        assert!(m.read_time > Duration::ZERO);
    }

    #[test]
    fn small_k_forces_grounding() {
        let res = run_quantum(&small(ArrivalOrder::InOrder, 2));
        // k = 2 on an in-order workload forces early grounding, so the
        // pending high-water mark stays at k... +0 tolerance.
        assert!(res.max_pending <= 3, "max_pending = {}", res.max_pending);
        assert_eq!(res.aborted, 0, "k-grounding must not cause aborts");
    }

    #[test]
    fn scan_profile_runs_and_prepares_the_scan_once() {
        let mut cfg = small(ArrivalOrder::Random { seed: 5 }, 61);
        cfg.n_reads = 6;
        cfg.scan_percent = 100; // every read overlaps every partition
        let res = run_quantum(&cfg);
        assert!(res.read_time > Duration::ZERO);
        // book + point-read + scan statements: three prepares, no
        // per-operation parses.
        assert_eq!(res.parses, 3, "scan must be prepared exactly once");
        // A scan collapses all pending state it meets, so it can only
        // hurt coordination relative to the point-read profile.
        let mut point = cfg.clone();
        point.scan_percent = 0;
        let p = run_quantum(&point);
        assert!(res.coordination_percent() <= p.coordination_percent());
    }

    #[test]
    fn read_heavy_profile_prepares_peek_and_possible_once() {
        let mut cfg = small(ArrivalOrder::Random { seed: 5 }, 61);
        cfg.n_reads = 20;
        cfg.peek_percent = 60;
        cfg.possible_percent = 20;
        let res = run_quantum(&cfg);
        assert!(res.read_time > Duration::ZERO);
        // book + point-read + peek + possible: four prepares, no
        // per-operation parses.
        assert_eq!(res.parses, 4, "peek/possible must be prepared once");
        // Non-collapsing reads must not cost coordination relative to the
        // collapsing profile (they never ground anything).
        let mut collapsing = cfg.clone();
        collapsing.peek_percent = 0;
        collapsing.possible_percent = 0;
        let c = run_quantum(&collapsing);
        assert!(res.coordination_percent() >= c.coordination_percent());
    }

    #[test]
    fn per_op_latency_distributions_are_retained() {
        let mut cfg = small(ArrivalOrder::Random { seed: 5 }, 61);
        cfg.n_reads = 10;
        let q = run_quantum(&cfg);
        assert_eq!(q.update_latency.count, 13, "12 bookings + final ground");
        assert_eq!(q.read_latency.count, 10);
        assert!(q.read_latency.p50_ns > 0);
        assert!(q.read_latency.p999_ns >= q.read_latency.p50_ns);
        let is = run_is(&cfg);
        assert_eq!(is.update_latency.count, 12);
        assert_eq!(is.read_latency.count, 10);
    }

    #[test]
    fn hot_loop_parses_exactly_twice_regardless_of_size() {
        // 12 bookings: two prepares, zero per-operation parses.
        let small_run = run_quantum(&small(ArrivalOrder::Alternate, 61));
        assert_eq!(small_run.parses, 2, "prepare-once violated");
        // 10× the reads, same parse count.
        let mut mixed = small(ArrivalOrder::Random { seed: 5 }, 61);
        mixed.n_reads = 40;
        let big_run = run_quantum(&mixed);
        assert_eq!(big_run.parses, 2, "hot loop re-entered the parser");
    }

    #[test]
    fn prepared_booking_matches_the_programmatic_transaction() {
        // The BOOKING_SQL template, once bound, is exactly the §5.1
        // entangled booking the workload used to build programmatically.
        let parsed = qdb_logic::parse_statement(BOOKING_SQL).unwrap();
        let bound = parsed
            .bind(&[
                Value::from(7),
                Value::from("goofy"),
                Value::from(7),
                Value::from(7),
                Value::from("mickey"),
                Value::from(7),
            ])
            .unwrap();
        let qdb_logic::Statement::Transaction(t) = bound else {
            panic!("booking SQL is not a transaction");
        };
        assert_eq!(
            t.to_transaction().unwrap().to_string(),
            crate::entangled::entangled_booking("mickey", "goofy", 7).to_string()
        );
    }
}
