//! # qdb-workload
//!
//! Workload generators, the **intelligent social (IS)** baseline, and the
//! experiment runner for the evaluation section (§5) of *Quantum
//! Databases*.
//!
//! The paper's workload simulates a social travel application: pairs of
//! friends book seats on flights and want to sit together. Each booking is
//! an *entangled resource transaction* — a hard constraint ("a seat on
//! flight f") plus optional coordination atoms ("next to my friend"). The
//! experiments vary:
//!
//! * the **arrival order** of partners (Table 1: Alternate / Random /
//!   In Order / Reverse Order),
//! * the **`k` bound** on pending transactions per partition,
//! * the **read percentage** of a mixed workload.
//!
//! The IS baseline models the best a clever client can do over an
//! ordinary database: check whether the friend already has a booking, sit
//! next to them if possible, otherwise book a seat with a free neighbour.

pub mod calendar;
pub mod entangled;
pub mod flights;
pub mod is_baseline;
pub mod metrics;
pub mod mixed;
pub mod orders;
pub mod remote;
pub mod rng;
pub mod runner;
pub mod stream;

pub use entangled::{entangled_booking, make_pairs, Pair};
pub use flights::FlightsConfig;
pub use is_baseline::IsClient;
pub use metrics::{coordination_stats, CoordStats};
pub use mixed::{build_mixed_workload, build_mixed_workload_with, MixedProfile, Op};
pub use orders::{arrange, ArrivalOrder, Request};
pub use remote::{run_remote, RemoteConfig, RemoteRunResult};
pub use runner::{run_is, run_quantum, RunConfig, RunResult};
pub use stream::{build_client_streams, SimOp, StreamProfile};
