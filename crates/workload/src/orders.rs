//! Transaction arrival orders (Table 1).
//!
//! | Order | Characteristic | Max pending |
//! |-------|----------------|-------------|
//! | Alternate | `Ti` entangles with `Ti+1` | 1 |
//! | Random | `Ti` entangles with some `Tj` | ⌈N/2⌉ |
//! | In Order | `Ti` entangles with `Ti+N/2` | ⌈N/2⌉ |
//! | Reverse Order | `Ti` entangles with `TN−i` | ⌈N/2⌉ |
//!
//! (Max-pending figures assume a transaction remains pending exactly until
//! its partner arrives — the §5.1 execution policy.)

use crate::entangled::Pair;
use crate::rng::{SliceRandom, StdRng};

/// One booking request of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The submitting user.
    pub user: String,
    /// The coordination partner named in the optional atoms.
    pub partner: String,
    /// Requested flight.
    pub flight: i64,
}

/// The four §5.2 arrival orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Each user is immediately followed by their partner.
    Alternate,
    /// Uniformly random interleaving (seeded — "expected to be by far the
    /// most realistic").
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// All first partners, then all second partners in the same order.
    InOrder,
    /// All first partners, then the second partners in reverse.
    ReverseOrder,
}

impl ArrivalOrder {
    /// Short display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalOrder::Alternate => "Alternate",
            ArrivalOrder::Random { .. } => "Random",
            ArrivalOrder::InOrder => "In Order",
            ArrivalOrder::ReverseOrder => "Reverse Order",
        }
    }

    /// Table 1's analytic bound on the maximum number of simultaneously
    /// pending transactions for `n` total transactions.
    pub fn max_pending_bound(&self, n: usize) -> usize {
        match self {
            ArrivalOrder::Alternate => 1,
            _ => n.div_ceil(2),
        }
    }
}

/// Arrange the two requests of every pair according to `order`.
pub fn arrange(pairs: &[Pair], order: ArrivalOrder) -> Vec<Request> {
    let firsts: Vec<Request> = pairs
        .iter()
        .map(|p| Request {
            user: p.a.clone(),
            partner: p.b.clone(),
            flight: p.flight,
        })
        .collect();
    let seconds: Vec<Request> = pairs
        .iter()
        .map(|p| Request {
            user: p.b.clone(),
            partner: p.a.clone(),
            flight: p.flight,
        })
        .collect();
    match order {
        ArrivalOrder::Alternate => firsts
            .into_iter()
            .zip(seconds)
            .flat_map(|(a, b)| [a, b])
            .collect(),
        ArrivalOrder::InOrder => firsts.into_iter().chain(seconds).collect(),
        ArrivalOrder::ReverseOrder => firsts
            .into_iter()
            .chain(seconds.into_iter().rev())
            .collect(),
        ArrivalOrder::Random { seed } => {
            let mut all: Vec<Request> = firsts.into_iter().chain(seconds).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            all.shuffle(&mut rng);
            all
        }
    }
}

/// Measure, for an arrival sequence, the maximum number of transactions
/// simultaneously waiting for their partner (the Table 1 column) —
/// assuming the §5.1 policy that a transaction stays pending exactly until
/// its partner arrives.
pub fn measured_max_pending(requests: &[Request]) -> usize {
    use std::collections::HashSet;
    let mut waiting: HashSet<&str> = HashSet::new();
    let mut max = 0usize;
    for r in requests {
        if waiting.remove(r.partner.as_str()) {
            // Partner was waiting: both leave the pending set.
        } else {
            waiting.insert(r.user.as_str());
        }
        max = max.max(waiting.len());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entangled::make_pairs;
    use crate::flights::FlightsConfig;

    fn pairs(n: usize) -> Vec<Pair> {
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: n, // plenty of capacity
        };
        make_pairs(&cfg, n)
    }

    #[test]
    fn alternate_keeps_one_pending() {
        let p = pairs(10);
        let reqs = arrange(&p, ArrivalOrder::Alternate);
        assert_eq!(reqs.len(), 20);
        assert_eq!(measured_max_pending(&reqs), 1);
        assert_eq!(ArrivalOrder::Alternate.max_pending_bound(20), 1);
    }

    #[test]
    fn in_order_peaks_at_half() {
        let p = pairs(10);
        let reqs = arrange(&p, ArrivalOrder::InOrder);
        assert_eq!(measured_max_pending(&reqs), 10);
        assert_eq!(ArrivalOrder::InOrder.max_pending_bound(20), 10);
    }

    #[test]
    fn reverse_order_peaks_at_half_with_varying_wait() {
        let p = pairs(10);
        let reqs = arrange(&p, ArrivalOrder::ReverseOrder);
        assert_eq!(measured_max_pending(&reqs), 10);
        // First user's partner arrives last: the first request is the
        // pair of the final request.
        assert_eq!(reqs[0].partner, reqs[19].user);
        assert_eq!(reqs[10].partner, reqs[9].user);
    }

    #[test]
    fn random_is_seed_deterministic_and_below_bound() {
        let p = pairs(10);
        let a = arrange(&p, ArrivalOrder::Random { seed: 1 });
        let b = arrange(&p, ArrivalOrder::Random { seed: 1 });
        let c = arrange(&p, ArrivalOrder::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(measured_max_pending(&a) <= 10);
        // All 20 requests survive the shuffle.
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn every_order_contains_each_user_once() {
        let p = pairs(5);
        for order in [
            ArrivalOrder::Alternate,
            ArrivalOrder::InOrder,
            ArrivalOrder::ReverseOrder,
            ArrivalOrder::Random { seed: 9 },
        ] {
            let reqs = arrange(&p, order);
            let mut users: Vec<&str> = reqs.iter().map(|r| r.user.as_str()).collect();
            users.sort_unstable();
            users.dedup();
            assert_eq!(users.len(), 10, "order {order:?}");
        }
    }
}
