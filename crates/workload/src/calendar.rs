//! Calendar management workload (§1's second motivating scenario).
//!
//! Meetings are resources: a meeting consumes a `(room, slot)` pair.
//! Deferring the slot assignment until the day before lets high-priority
//! short-notice meetings (the CEO's Friday-afternoon call) claim specific
//! slots without the rescheduling cascade the paper describes.

use qdb_core::QuantumDb;
use qdb_logic::{parse_transaction, ResourceTransaction};
use qdb_storage::{Schema, Tuple, Value, ValueType};

/// Calendar shape: `rooms × slots` capacity.
#[derive(Debug, Clone, Copy)]
pub struct CalendarConfig {
    /// Number of rooms.
    pub rooms: usize,
    /// Number of time slots (e.g. hours across a week).
    pub slots: usize,
}

/// Schema of `Free(room, slot)`.
pub fn free_schema() -> Schema {
    Schema::new(
        "Free",
        vec![("room", ValueType::Int), ("slot", ValueType::Int)],
    )
}

/// Schema of `Meetings(name, room, slot)`.
pub fn meetings_schema() -> Schema {
    Schema::new(
        "Meetings",
        vec![
            ("name", ValueType::Str),
            ("room", ValueType::Int),
            ("slot", ValueType::Int),
        ],
    )
}

/// Schema of `Prefers(name, slot)` — soft slot preferences.
pub fn prefers_schema() -> Schema {
    Schema::new(
        "Prefers",
        vec![("name", ValueType::Str), ("slot", ValueType::Int)],
    )
}

/// Install the calendar schema and a fully free calendar.
pub fn install_calendar(qdb: &mut QuantumDb, cfg: &CalendarConfig) -> qdb_core::Result<()> {
    qdb.create_table(free_schema())?;
    qdb.create_table(meetings_schema())?;
    qdb.create_table(prefers_schema())?;
    qdb.create_index("Free", 1)?;
    qdb.create_index("Meetings", 0)?;
    let mut rows = Vec::with_capacity(cfg.rooms * cfg.slots);
    for room in 1..=cfg.rooms as i64 {
        for slot in 1..=cfg.slots as i64 {
            rows.push(Tuple::from(vec![Value::Int(room), Value::Int(slot)]));
        }
    }
    qdb.bulk_insert("Free", rows)?;
    Ok(())
}

/// Schedule `name` into any free (room, slot), with an optional preference
/// for the slots listed in `Prefers`.
pub fn schedule_meeting(name: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Free(r, t), +Meetings('{name}', r, t) :-1 Free(r, t), Prefers('{name}', t)?"
    ))
    .expect("well-formed")
}

/// Schedule a high-priority meeting pinned to a specific slot (any room).
pub fn schedule_pinned(name: &str, slot: i64) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Free(r, {slot}), +Meetings('{name}', r, {slot}) :-1 Free(r, {slot})"
    ))
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_core::QuantumDbConfig;
    use qdb_storage::tuple;

    #[test]
    fn offsite_rescheduling_scenario() {
        // Mickey's team offsite: scheduled weeks ahead but not pinned to a
        // slot. Later, a CEO meeting demands the exact slot the offsite
        // would naively have taken — with deferral, no rescheduling
        // cascade happens.
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        install_calendar(&mut qdb, &CalendarConfig { rooms: 1, slots: 2 }).unwrap();
        // Offsite prefers slot 1 (Friday afternoon).
        qdb.bulk_insert("Prefers", vec![tuple!["offsite", 1]])
            .unwrap();
        assert!(qdb
            .submit(&schedule_meeting("offsite"))
            .unwrap()
            .is_committed());
        // CEO meeting pins slot 1 — with only 1 room this forces the
        // offsite out of its preferred slot, NO rescheduling needed.
        assert!(qdb
            .submit(&schedule_pinned("ceo", 1))
            .unwrap()
            .is_committed());
        qdb.ground_all().unwrap();
        let rows = qdb.query("Meetings('ceo', r, t)").unwrap();
        assert_eq!(rows.len(), 1);
        let offsite = qdb.query("Meetings('offsite', r, t)").unwrap();
        assert_eq!(offsite.len(), 1, "offsite still has a slot");
        // They occupy different slots of the single room.
        assert_eq!(qdb.database().table("Free").unwrap().len(), 0);
    }

    #[test]
    fn preference_honored_when_uncontended() {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        install_calendar(&mut qdb, &CalendarConfig { rooms: 2, slots: 3 }).unwrap();
        qdb.bulk_insert("Prefers", vec![tuple!["standup", 2]])
            .unwrap();
        qdb.submit(&schedule_meeting("standup")).unwrap();
        qdb.ground_all().unwrap();
        let q = qdb_logic::parse_query("Meetings('standup', r, t)").unwrap();
        let mut qdb2 = qdb; // shadow to call read
        let rows = qdb2.read_parsed(&q, None).unwrap();
        let t = rows[0].get(q.var("t").unwrap()).unwrap().as_int().unwrap();
        assert_eq!(t, 2, "optional preference satisfied when possible");
    }

    #[test]
    fn full_calendar_rejects_new_meetings() {
        let mut qdb = QuantumDb::new(QuantumDbConfig::default()).unwrap();
        install_calendar(&mut qdb, &CalendarConfig { rooms: 1, slots: 1 }).unwrap();
        assert!(qdb.submit(&schedule_meeting("a")).unwrap().is_committed());
        assert!(!qdb.submit(&schedule_meeting("b")).unwrap().is_committed());
    }
}
