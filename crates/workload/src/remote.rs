//! The networked workload mode: drive the booking workload over TCP.
//!
//! Where [`crate::runner`] exercises the engine in-process, this module
//! spawns an in-process `qdb-server` on a loopback port and drives it with
//! `N` concurrent `qdb-client` connections — the paper's actual deployment
//! shape (many users against one middle-tier service), and the load shape
//! the ROADMAP's "heavy traffic" goal is measured against. Each client
//! thread prepares the entangled booking once (PREPARE) and then streams
//! pipelined BIND/RUN pairs for its share of the requests.

use std::time::{Duration, Instant};

use qdb_client::Connection;
use qdb_core::wire::ServerStats;
use qdb_core::{Histogram, QuantumDb, QuantumDbConfig, Response};
use qdb_server::Server;
use qdb_storage::Value;

use crate::entangled::make_pairs;
use crate::flights::{install, FlightsConfig};
use crate::metrics::{coordination_stats, CoordStats};
use crate::orders::{arrange, ArrivalOrder, Request};
use crate::runner::BOOKING_SQL;

/// How booking requests map onto client connections — the contention
/// profile of the run.
///
/// The §4 independence partitions are keyed (conservatively) by flight:
/// bookings on different flights never unify, bookings on the same flight
/// always may. The profile therefore controls how much partition sharing
/// the server's worker pool sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionProfile {
    /// Round-robin interleave (the default): connection `i` takes requests
    /// `i, i+C, i+2C, …`, so partners — and every flight's key range —
    /// spread across connections. Connections *overlap* on partitions,
    /// exercising the sharded engine's slot handoff and merge paths.
    #[default]
    Interleaved,
    /// Disjoint key ranges: connection `i` drives only flights `≡ i`
    /// (mod C). No two connections ever touch the same partition — the
    /// best case for partition-parallel execution and the workload the
    /// `partition_scaling` benchmark scales across worker counts.
    DisjointFlights,
}

/// Configuration of one remote run.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Database shape.
    pub flights: FlightsConfig,
    /// Coordination pairs per flight.
    pub pairs_per_flight: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Arrival-order shuffle seed.
    pub seed: u64,
    /// Request-to-connection assignment (disjoint vs overlapping ranges).
    pub contention: ContentionProfile,
    /// Percentage chance, per booking, that the connection follows up
    /// with a non-collapsing `SELECT PEEK` of the just-booked user —
    /// read-mostly traffic against the server's delta-view read path.
    pub peek_percent: usize,
    /// Every Nth peek is issued as a `SELECT POSSIBLE` instead (bounded
    /// possible-worlds sampling); `0` disables the sampling.
    pub possible_every: usize,
    /// Engine configuration.
    pub engine: QuantumDbConfig,
}

impl RemoteConfig {
    /// A remote run over `flights` with `connections` clients.
    pub fn new(flights: FlightsConfig, pairs_per_flight: usize, connections: usize) -> Self {
        RemoteConfig {
            flights,
            pairs_per_flight,
            connections,
            workers: 4,
            seed: 0xC1DE,
            contention: ContentionProfile::default(),
            peek_percent: 0,
            possible_every: 0,
            engine: QuantumDbConfig::default(),
        }
    }

    /// The read-mostly profile: every booking is followed by PEEK reads
    /// (~2 per booking on average), every 8th read sampled as `SELECT
    /// POSSIBLE` — the realistic "users re-check their booking far more
    /// often than they book" shape the server's read path is sized for.
    pub fn read_mostly(
        flights: FlightsConfig,
        pairs_per_flight: usize,
        connections: usize,
    ) -> Self {
        RemoteConfig {
            peek_percent: 200,
            possible_every: 8,
            ..RemoteConfig::new(flights, pairs_per_flight, connections)
        }
    }
}

/// Assign requests to connections per the contention profile.
pub fn split_requests(
    requests: &[Request],
    connections: usize,
    profile: ContentionProfile,
) -> Vec<Vec<Request>> {
    match profile {
        // Interleaved round-robin split: connection `i` takes requests
        // i, i+C, i+2C, … so partners spread across connections and the
        // entanglement actually crosses the network.
        ContentionProfile::Interleaved => (0..connections)
            .map(|i| {
                requests
                    .iter()
                    .skip(i)
                    .step_by(connections)
                    .cloned()
                    .collect()
            })
            .collect(),
        // Flight-keyed split: all requests for one flight (= one §4
        // partition) land on one connection.
        ContentionProfile::DisjointFlights => {
            let mut shards: Vec<Vec<Request>> = vec![Vec::new(); connections];
            for r in requests {
                shards[(r.flight as usize) % connections].push(r.clone());
            }
            shards
        }
    }
}

/// Measurements from one remote run.
#[derive(Debug, Clone)]
pub struct RemoteRunResult {
    /// Client connections driven.
    pub connections: usize,
    /// Booking operations executed (across all connections).
    pub ops: usize,
    /// Wall-clock time for the booking phase.
    pub total: Duration,
    /// Bookings per second across the whole fleet.
    pub throughput: f64,
    /// Bookings refused admission.
    pub aborted: u64,
    /// PEEK reads issued across all connections.
    pub peeks: u64,
    /// `SELECT POSSIBLE` reads issued across all connections.
    pub possibles: u64,
    /// Engine counter: database clones observed on the base's clone
    /// family — the delta-view read path keeps this at zero no matter how
    /// read-heavy the traffic is.
    pub db_clones: u64,
    /// Coordination outcome after grounding.
    pub coord: CoordStats,
    /// Engine parse counter — stays at O(#connections), not O(#ops),
    /// because every connection prepares the booking statement once.
    pub parses: u64,
    /// High-water mark of simultaneously running solver sections inside
    /// the engine — above 1 proves admissions/groundings overlapped.
    pub solve_concurrency_peak: u64,
    /// Server traffic counters.
    pub server: ServerStats,
    /// Client-observed per-booking round-trip latency distribution
    /// (p50/p90/p99/p999/max, nanoseconds) across all connections.
    pub booking_latency: qdb_core::HistSummary,
    /// Client-observed per-read (PEEK/POSSIBLE) round-trip latency
    /// distribution across all connections.
    pub read_latency: qdb_core::HistSummary,
}

impl RemoteRunResult {
    /// Coordination percentage.
    pub fn coordination_percent(&self) -> f64 {
        self.coord.percent()
    }
}

/// Run the booking workload over loopback TCP: spawn a server owning a
/// freshly installed flights database, fan the requests out over
/// `cfg.connections` client threads, ground, and collect measurements.
pub fn run_remote(cfg: &RemoteConfig) -> RemoteRunResult {
    let mut qdb = QuantumDb::new(cfg.engine.clone()).expect("engine construction");
    install(&mut qdb, &cfg.flights).expect("schema install");
    let shared = qdb.into_shared();
    let server =
        Server::spawn_with_db("127.0.0.1:0", cfg.workers, shared.clone()).expect("loopback server");
    let addr = server.addr();

    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let requests = arrange(&pairs, ArrivalOrder::Random { seed: cfg.seed });
    let connections = cfg.connections.max(1);
    let shards: Vec<Vec<Request>> = split_requests(&requests, connections, cfg.contention);

    // Client-observed round-trip latencies; the histograms are atomic, so
    // every connection thread records into the same pair directly.
    let book_hist = Histogram::new();
    let read_hist = Histogram::new();
    let start = Instant::now();
    let (aborted, peeks, possibles) = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let read_cfg = ReadTraffic {
                    peek_percent: cfg.peek_percent,
                    possible_every: cfg.possible_every,
                    seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37),
                };
                let (book_hist, read_hist) = (&book_hist, &read_hist);
                scope.spawn(move || drive_connection(addr, shard, read_cfg, book_hist, read_hist))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread healthy"))
            .fold((0u64, 0u64, 0u64), |(a, p, q), (da, dp, dq)| {
                (a + da, p + dp, q + dq)
            })
    });
    let total = start.elapsed();

    // Collapse any remaining pending state and read the counters off the
    // same wire a real operator would.
    let mut control = Connection::connect(addr).expect("control connection");
    control.execute("GROUND ALL").expect("ground all");
    let (engine_metrics, server_stats) = control.server_stats().expect("metrics");
    drop(control);

    let coord =
        shared.with_database(|db| coordination_stats(db, &pairs, cfg.flights.rows_per_flight));
    let solve_concurrency_peak = shared.solve_concurrency_peak();
    server.shutdown();
    RemoteRunResult {
        connections,
        ops: requests.len(),
        total,
        throughput: requests.len() as f64 / total.as_secs_f64().max(f64::EPSILON),
        aborted,
        peeks,
        possibles,
        db_clones: engine_metrics.db_clones,
        coord,
        parses: engine_metrics.parses,
        solve_concurrency_peak,
        server: server_stats,
        booking_latency: book_hist.summary(),
        read_latency: read_hist.summary(),
    }
}

/// Per-connection read-traffic knobs (see [`RemoteConfig`]).
#[derive(Debug, Clone, Copy)]
struct ReadTraffic {
    peek_percent: usize,
    possible_every: usize,
    seed: u64,
}

/// One client thread: connect, prepare the hot statements once, stream
/// its shard as pipelined bind+run pairs, interleaving the configured
/// read-mostly traffic. Returns (aborted bookings, peeks, possibles).
fn drive_connection(
    addr: std::net::SocketAddr,
    shard: &[Request],
    reads: ReadTraffic,
    book_hist: &Histogram,
    read_hist: &Histogram,
) -> (u64, u64, u64) {
    use crate::rng::StdRng;
    use crate::runner::{PEEK_SQL, POSSIBLE_SQL};

    let mut conn = Connection::connect(addr).expect("client connect");
    let book = conn.prepare(BOOKING_SQL).expect("booking SQL prepares");
    let read_heavy = reads.peek_percent > 0;
    let peek = read_heavy.then(|| conn.prepare(PEEK_SQL).expect("peek SQL prepares"));
    let possible = (read_heavy && reads.possible_every > 0)
        .then(|| conn.prepare(POSSIBLE_SQL).expect("possible SQL prepares"));
    let mut rng = StdRng::seed_from_u64(reads.seed);
    let (mut aborted, mut peeks, mut possibles) = (0u64, 0u64, 0u64);
    for request in shard {
        let flight = Value::from(request.flight);
        let t0 = Instant::now();
        let response = conn
            .bind_run(
                &book,
                &[
                    flight.clone(),
                    Value::from(request.partner.as_str()),
                    flight.clone(),
                    flight.clone(),
                    Value::from(request.user.as_str()),
                    flight,
                ],
            )
            .expect("booking executes");
        book_hist.record_duration(t0.elapsed());
        match response {
            Response::Committed(_) => {}
            Response::Aborted => aborted += 1,
            other => panic!("booking answered {other:?}"),
        }
        // Read-mostly follow-ups: the user re-checks their own booking.
        // peek_percent is per-booking in percent, so 200 ≈ two reads per
        // booking on average.
        let mut budget = reads.peek_percent;
        while budget > 0 {
            let issue = budget >= 100 || rng.gen_range(0..100) < budget;
            budget = budget.saturating_sub(100);
            if !issue {
                continue;
            }
            let user = Value::from(request.user.as_str());
            let total_reads = peeks + possibles;
            let sample_possible = possible.is_some()
                && reads.possible_every > 0
                && (total_reads + 1).is_multiple_of(reads.possible_every as u64);
            let t0 = Instant::now();
            if sample_possible {
                let response = conn
                    .bind_run(possible.as_ref().expect("prepared"), &[user])
                    .expect("possible executes");
                assert!(
                    matches!(response, Response::Worlds(_)),
                    "POSSIBLE answered {response:?}"
                );
                possibles += 1;
            } else {
                let response = conn
                    .bind_run(peek.as_ref().expect("prepared"), &[user])
                    .expect("peek executes");
                assert!(
                    matches!(response, Response::Rows(_)),
                    "PEEK answered {response:?}"
                );
                peeks += 1;
            }
            read_hist.record_duration(t0.elapsed());
        }
    }
    (aborted, peeks, possibles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_run_coordinates_like_the_embedded_runner() {
        let cfg = RemoteConfig::new(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            4,
        );
        let res = run_remote(&cfg);
        assert_eq!(res.ops, 12);
        assert_eq!(res.aborted, 0);
        assert_eq!(res.coord.max_possible, 8);
        assert_eq!(res.coord.coordinated_users, 8);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn disjoint_profile_keeps_flights_on_one_connection() {
        let flights = FlightsConfig {
            flights: 6,
            rows_per_flight: 2,
        };
        let pairs = make_pairs(&flights, 2);
        let requests = arrange(&pairs, ArrivalOrder::Random { seed: 7 });
        let shards = split_requests(&requests, 3, ContentionProfile::DisjointFlights);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), requests.len());
        // Every flight appears on exactly one connection.
        for flight in 1..=6i64 {
            let on: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.iter().any(|r| r.flight == flight))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(on.len(), 1, "flight {flight} on connections {on:?}");
        }
        // Interleaved spreads one flight across several connections.
        let spread = split_requests(&requests, 3, ContentionProfile::Interleaved);
        let f1_conns = spread
            .iter()
            .filter(|s| s.iter().any(|r| r.flight == 1))
            .count();
        assert!(f1_conns > 1, "interleaved must overlap key ranges");
    }

    #[test]
    fn remote_run_with_disjoint_profile_still_coordinates() {
        let mut cfg = RemoteConfig::new(
            FlightsConfig {
                flights: 4,
                rows_per_flight: 4,
            },
            3,
            4,
        );
        cfg.contention = ContentionProfile::DisjointFlights;
        let res = run_remote(&cfg);
        assert_eq!(res.ops, 24);
        assert_eq!(res.aborted, 0);
        // Partner pairs never split across connections here, so full
        // coordination is reachable and the engine must deliver it.
        assert_eq!(res.coord.coordinated_users, res.coord.max_possible);
    }

    #[test]
    fn read_mostly_profile_drives_peeks_and_possibles_clone_free() {
        let mut cfg = RemoteConfig::read_mostly(
            FlightsConfig {
                flights: 2,
                rows_per_flight: 4,
            },
            3,
            2,
        );
        cfg.contention = ContentionProfile::DisjointFlights;
        let res = run_remote(&cfg);
        assert_eq!(res.ops, 12);
        assert_eq!(res.aborted, 0);
        // ~2 reads per booking, every 8th a POSSIBLE: both flavors flow.
        assert!(res.peeks >= 12, "peeks = {}", res.peeks);
        assert!(res.possibles >= 1, "possibles = {}", res.possibles);
        // The server's read path is delta-view only: a read-mostly run
        // never clones the database.
        assert_eq!(res.db_clones, 0, "read path must stay clone-free");
        // Reads ride the prepared-statement path: one PREPARE per hot
        // statement per connection, nothing per-read.
        assert_eq!(res.parses, 2 * 3 + 2, "per-read parse detected");
        // Booking-class and SELECT-class traffic both crossed the wire.
        assert_eq!(res.server.class("SELECT … CHOOSE 1"), Some(12));
        assert_eq!(res.server.class("SELECT"), Some(res.peeks + res.possibles));
        // Client-observed latency distributions cover every operation.
        assert_eq!(res.booking_latency.count, 12);
        assert_eq!(res.read_latency.count, res.peeks + res.possibles);
        assert!(res.booking_latency.p50_ns > 0);
        assert!(res.read_latency.p999_ns >= res.read_latency.p50_ns);
    }

    #[test]
    fn remote_hot_loop_parses_once_per_connection() {
        let cfg = RemoteConfig::new(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            3,
        );
        let res = run_remote(&cfg);
        // One booking prepare per connection (the PREPARE), one GROUND ALL
        // and one SHOW METRICS on the control connection. The 12 bookings
        // themselves never touch the parser.
        assert_eq!(res.parses, 3 + 2, "remote hot loop re-entered the parser");
        // Traffic accounting saw every frame: 1 PREPARE + 12×(BIND+RUN)
        // + GROUND ALL + SHOW METRICS, at minimum.
        assert!(res.server.frames_decoded >= 1 + 24 + 2);
        assert!(res.server.bytes_in > 0 && res.server.bytes_out > 0);
        assert_eq!(res.server.connections, 4);
        assert_eq!(res.server.class("SELECT … CHOOSE 1"), Some(12));
    }
}
