//! The networked workload mode: drive the booking workload over TCP.
//!
//! Where [`crate::runner`] exercises the engine in-process, this module
//! spawns an in-process `qdb-server` on a loopback port and drives it with
//! `N` concurrent `qdb-client` connections — the paper's actual deployment
//! shape (many users against one middle-tier service), and the load shape
//! the ROADMAP's "heavy traffic" goal is measured against. Each client
//! thread prepares the entangled booking once (PREPARE) and then streams
//! pipelined BIND/RUN pairs for its share of the requests.

use std::time::{Duration, Instant};

use qdb_client::Connection;
use qdb_core::wire::ServerStats;
use qdb_core::{QuantumDb, QuantumDbConfig, Response};
use qdb_server::Server;
use qdb_storage::Value;

use crate::entangled::make_pairs;
use crate::flights::{install, FlightsConfig};
use crate::metrics::{coordination_stats, CoordStats};
use crate::orders::{arrange, ArrivalOrder, Request};
use crate::runner::BOOKING_SQL;

/// Configuration of one remote run.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Database shape.
    pub flights: FlightsConfig,
    /// Coordination pairs per flight.
    pub pairs_per_flight: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Arrival-order shuffle seed.
    pub seed: u64,
    /// Engine configuration.
    pub engine: QuantumDbConfig,
}

impl RemoteConfig {
    /// A remote run over `flights` with `connections` clients.
    pub fn new(flights: FlightsConfig, pairs_per_flight: usize, connections: usize) -> Self {
        RemoteConfig {
            flights,
            pairs_per_flight,
            connections,
            workers: 4,
            seed: 0xC1DE,
            engine: QuantumDbConfig::default(),
        }
    }
}

/// Measurements from one remote run.
#[derive(Debug, Clone)]
pub struct RemoteRunResult {
    /// Client connections driven.
    pub connections: usize,
    /// Booking operations executed (across all connections).
    pub ops: usize,
    /// Wall-clock time for the booking phase.
    pub total: Duration,
    /// Bookings per second across the whole fleet.
    pub throughput: f64,
    /// Bookings refused admission.
    pub aborted: u64,
    /// Coordination outcome after grounding.
    pub coord: CoordStats,
    /// Engine parse counter — stays at O(#connections), not O(#ops),
    /// because every connection prepares the booking statement once.
    pub parses: u64,
    /// Server traffic counters.
    pub server: ServerStats,
}

impl RemoteRunResult {
    /// Coordination percentage.
    pub fn coordination_percent(&self) -> f64 {
        self.coord.percent()
    }
}

/// Run the booking workload over loopback TCP: spawn a server owning a
/// freshly installed flights database, fan the requests out over
/// `cfg.connections` client threads, ground, and collect measurements.
pub fn run_remote(cfg: &RemoteConfig) -> RemoteRunResult {
    let mut qdb = QuantumDb::new(cfg.engine.clone()).expect("engine construction");
    install(&mut qdb, &cfg.flights).expect("schema install");
    let shared = qdb.into_shared();
    let server =
        Server::spawn_with_db("127.0.0.1:0", cfg.workers, shared.clone()).expect("loopback server");
    let addr = server.addr();

    let pairs = make_pairs(&cfg.flights, cfg.pairs_per_flight);
    let requests = arrange(&pairs, ArrivalOrder::Random { seed: cfg.seed });
    let connections = cfg.connections.max(1);
    // Interleaved round-robin split: connection `i` takes requests
    // i, i+C, i+2C, … so partners spread across connections and the
    // entanglement actually crosses the network.
    let shards: Vec<Vec<Request>> = (0..connections)
        .map(|i| {
            requests
                .iter()
                .skip(i)
                .step_by(connections)
                .cloned()
                .collect()
        })
        .collect();

    let start = Instant::now();
    let aborted: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || drive_connection(addr, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread healthy"))
            .sum()
    });
    let total = start.elapsed();

    // Collapse any remaining pending state and read the counters off the
    // same wire a real operator would.
    let mut control = Connection::connect(addr).expect("control connection");
    control.execute("GROUND ALL").expect("ground all");
    let (engine_metrics, server_stats) = control.server_stats().expect("metrics");
    drop(control);

    let coord =
        shared.with(|q| coordination_stats(q.database(), &pairs, cfg.flights.rows_per_flight));
    server.shutdown();
    RemoteRunResult {
        connections,
        ops: requests.len(),
        total,
        throughput: requests.len() as f64 / total.as_secs_f64().max(f64::EPSILON),
        aborted,
        coord,
        parses: engine_metrics.parses,
        server: server_stats,
    }
}

/// One client thread: connect, prepare the booking once, stream its shard
/// as pipelined bind+run pairs. Returns how many bookings were refused.
fn drive_connection(addr: std::net::SocketAddr, shard: &[Request]) -> u64 {
    let mut conn = Connection::connect(addr).expect("client connect");
    let book = conn.prepare(BOOKING_SQL).expect("booking SQL prepares");
    let mut aborted = 0u64;
    for request in shard {
        let flight = Value::from(request.flight);
        let response = conn
            .bind_run(
                &book,
                &[
                    flight.clone(),
                    Value::from(request.partner.as_str()),
                    flight.clone(),
                    flight.clone(),
                    Value::from(request.user.as_str()),
                    flight,
                ],
            )
            .expect("booking executes");
        match response {
            Response::Committed(_) => {}
            Response::Aborted => aborted += 1,
            other => panic!("booking answered {other:?}"),
        }
    }
    aborted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_run_coordinates_like_the_embedded_runner() {
        let cfg = RemoteConfig::new(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            4,
        );
        let res = run_remote(&cfg);
        assert_eq!(res.ops, 12);
        assert_eq!(res.aborted, 0);
        assert_eq!(res.coord.max_possible, 8);
        assert_eq!(res.coord.coordinated_users, 8);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn remote_hot_loop_parses_once_per_connection() {
        let cfg = RemoteConfig::new(
            FlightsConfig {
                flights: 1,
                rows_per_flight: 4,
            },
            6,
            3,
        );
        let res = run_remote(&cfg);
        // One booking prepare per connection (the PREPARE), one GROUND ALL
        // and one SHOW METRICS on the control connection. The 12 bookings
        // themselves never touch the parser.
        assert_eq!(res.parses, 3 + 2, "remote hot loop re-entered the parser");
        // Traffic accounting saw every frame: 1 PREPARE + 12×(BIND+RUN)
        // + GROUND ALL + SHOW METRICS, at minimum.
        assert!(res.server.frames_decoded >= 1 + 24 + 2);
        assert!(res.server.bytes_in > 0 && res.server.bytes_out > 0);
        assert_eq!(res.server.connections, 4);
        assert_eq!(res.server.class("SELECT … CHOOSE 1"), Some(12));
    }
}
