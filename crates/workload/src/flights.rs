//! The flights database generator (§5.2).
//!
//! *"Each flight in our database is represented as a set of seats arranged
//! in rows of three. Each row has four possible adjacent pairs, only two
//! of which can be booked simultaneously."* Seat labels are shared across
//! flights (row `r`, column `A`–`C`), so a single `Adjacent` relation
//! covers all flights, exactly as in the paper's `Adj(s1, s2)` atoms.

use qdb_core::QuantumDb;
use qdb_storage::{Database, Schema, Tuple, Value, ValueType};

/// Flight database shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightsConfig {
    /// Number of flights.
    pub flights: usize,
    /// Rows per flight; each row has 3 seats.
    pub rows_per_flight: usize,
}

impl FlightsConfig {
    /// §5.3 "Order of arrival": 1 flight × 34 rows = 102 seats.
    pub fn order_of_arrival() -> Self {
        FlightsConfig {
            flights: 1,
            rows_per_flight: 34,
        }
    }

    /// §5.3 "Scalability": n flights × 50 rows = 150 seats each.
    pub fn scalability(flights: usize) -> Self {
        FlightsConfig {
            flights,
            rows_per_flight: 50,
        }
    }

    /// §5.3 "Mixed workload": 40 flights × 150 seats.
    pub fn mixed_workload() -> Self {
        FlightsConfig {
            flights: 40,
            rows_per_flight: 50,
        }
    }

    /// Seats per flight.
    pub fn seats_per_flight(&self) -> usize {
        self.rows_per_flight * 3
    }

    /// Total seats.
    pub fn total_seats(&self) -> usize {
        self.flights * self.seats_per_flight()
    }

    /// Flight numbers, 1-based.
    pub fn flight_numbers(&self) -> impl Iterator<Item = i64> + '_ {
        1..=self.flights as i64
    }

    /// Maximum users that can be seated in adjacent pairs on one flight
    /// (one pair per row — the paper's "maximum of twenty coordination
    /// requests" for ten rows).
    pub fn max_coordinated_per_flight(&self) -> usize {
        2 * self.rows_per_flight
    }
}

/// The seat label for row `row` (1-based) and position `pos` (0..3).
pub fn seat_label(row: usize, pos: usize) -> String {
    debug_assert!(pos < 3);
    format!("{row}{}", (b'A' + pos as u8) as char)
}

/// Schema of `Available(flight, seat)`.
pub fn available_schema() -> Schema {
    Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    )
}

/// Schema of `Bookings(name, flight, seat)`.
pub fn bookings_schema() -> Schema {
    Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    )
}

/// Schema of `Adjacent(s1, s2)`.
pub fn adjacent_schema() -> Schema {
    Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    )
}

fn adjacent_tuples(rows: usize) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(rows * 4);
    for row in 1..=rows {
        let a = seat_label(row, 0);
        let b = seat_label(row, 1);
        let c = seat_label(row, 2);
        for (x, y) in [(&a, &b), (&b, &a), (&b, &c), (&c, &b)] {
            out.push(Tuple::from(vec![
                Value::str(x.as_str()),
                Value::str(y.as_str()),
            ]));
        }
    }
    out
}

fn available_tuples(cfg: &FlightsConfig) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(cfg.total_seats());
    for f in cfg.flight_numbers() {
        for row in 1..=cfg.rows_per_flight {
            for pos in 0..3 {
                out.push(Tuple::from(vec![
                    Value::Int(f),
                    Value::str(seat_label(row, pos)),
                ]));
            }
        }
    }
    out
}

/// Build a plain storage database (for the IS baseline and for world
/// enumeration oracles).
pub fn build_database(cfg: &FlightsConfig) -> Database {
    let mut db = Database::new();
    db.create_table(available_schema()).unwrap();
    db.create_table(bookings_schema()).unwrap();
    db.create_table(adjacent_schema()).unwrap();
    let _ = db.table_mut("Available").unwrap().create_index(0);
    let _ = db.table_mut("Available").unwrap().create_index(1);
    let _ = db.table_mut("Bookings").unwrap().create_index(0);
    let _ = db.table_mut("Adjacent").unwrap().create_index(0);
    for t in available_tuples(cfg) {
        db.insert("Available", t).unwrap();
    }
    for t in adjacent_tuples(cfg.rows_per_flight) {
        db.insert("Adjacent", t).unwrap();
    }
    db
}

/// Install the flight schema and data into a quantum database engine
/// ("appropriate indices are defined for each relation", §5.2).
pub fn install(qdb: &mut QuantumDb, cfg: &FlightsConfig) -> qdb_core::Result<()> {
    qdb.create_table(available_schema())?;
    qdb.create_table(bookings_schema())?;
    qdb.create_table(adjacent_schema())?;
    qdb.create_index("Available", 0)?;
    qdb.create_index("Available", 1)?;
    qdb.create_index("Bookings", 0)?;
    qdb.create_index("Adjacent", 0)?;
    qdb.bulk_insert("Available", available_tuples(cfg))?;
    qdb.bulk_insert("Adjacent", adjacent_tuples(cfg.rows_per_flight))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let c = FlightsConfig::order_of_arrival();
        assert_eq!(c.total_seats(), 102);
        assert_eq!(c.max_coordinated_per_flight(), 68);
        let c = FlightsConfig::scalability(10);
        assert_eq!(c.seats_per_flight(), 150);
        assert_eq!(c.total_seats(), 1500);
        let c = FlightsConfig::mixed_workload();
        assert_eq!(c.total_seats(), 6000);
    }

    #[test]
    fn seat_labels() {
        assert_eq!(seat_label(1, 0), "1A");
        assert_eq!(seat_label(34, 2), "34C");
    }

    #[test]
    fn database_shape() {
        let cfg = FlightsConfig {
            flights: 2,
            rows_per_flight: 3,
        };
        let db = build_database(&cfg);
        assert_eq!(db.table("Available").unwrap().len(), 18);
        // 4 ordered adjacent pairs per row (§5.2).
        assert_eq!(db.table("Adjacent").unwrap().len(), 12);
        assert_eq!(db.table("Bookings").unwrap().len(), 0);
        // Adjacency is intra-row only.
        assert!(db.contains("Adjacent", &qdb_storage::tuple!["1A", "1B"]));
        assert!(!db.contains("Adjacent", &qdb_storage::tuple!["1C", "2A"]));
    }

    #[test]
    fn install_into_engine() {
        let mut qdb = QuantumDb::new(qdb_core::QuantumDbConfig::default()).unwrap();
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 2,
        };
        install(&mut qdb, &cfg).unwrap();
        assert_eq!(qdb.database().table("Available").unwrap().len(), 6);
        assert_eq!(qdb.database().table("Adjacent").unwrap().len(), 8);
    }
}
