//! Coordination measurement (§5.2).
//!
//! *"A key metric for measuring the benefit of quantum databases is the
//! percentage of maximum possible coordination which is actually
//! achieved."* For one flight with `r` rows, at most `2r` users can sit in
//! adjacent pairs (one pair per 3-seat row).

use std::collections::HashMap;

use qdb_storage::{tuple, Database};

use crate::entangled::Pair;

/// Coordination outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordStats {
    /// Users seated adjacent to their partner.
    pub coordinated_users: usize,
    /// The maximum achievable number of coordinated users for this
    /// workload (per flight: `min(2·pairs, 2·rows)`).
    pub max_possible: usize,
    /// Users who got any seat at all.
    pub seated_users: usize,
    /// Total users in the workload.
    pub total_users: usize,
}

impl CoordStats {
    /// Percentage of the maximum possible coordination achieved (Fig. 6,
    /// Fig. 9, Table 2).
    pub fn percent(&self) -> f64 {
        if self.max_possible == 0 {
            100.0
        } else {
            100.0 * self.coordinated_users as f64 / self.max_possible as f64
        }
    }
}

/// Measure coordination on the final bookings table.
pub fn coordination_stats(db: &Database, pairs: &[Pair], rows_per_flight: usize) -> CoordStats {
    let bookings = db.table("Bookings").expect("schema installed");
    let seat_of = |name: &str, flight: i64| -> Option<String> {
        let bound = vec![
            Some(qdb_storage::Value::str(name)),
            Some(qdb_storage::Value::Int(flight)),
            None,
        ];
        let row = bookings.select(&bound).next().cloned();
        row.map(|t| t[2].as_str().expect("seat").to_string())
    };
    let mut coordinated_users = 0usize;
    let mut seated_users = 0usize;
    let mut pairs_per_flight: HashMap<i64, usize> = HashMap::new();
    for p in pairs {
        *pairs_per_flight.entry(p.flight).or_default() += 1;
        let sa = seat_of(&p.a, p.flight);
        let sb = seat_of(&p.b, p.flight);
        seated_users += usize::from(sa.is_some()) + usize::from(sb.is_some());
        if let (Some(sa), Some(sb)) = (sa, sb) {
            if db.contains("Adjacent", &tuple![sa.as_str(), sb.as_str()]) {
                coordinated_users += 2;
            }
        }
    }
    let max_possible: usize = pairs_per_flight
        .values()
        .map(|&n| (2 * n).min(2 * rows_per_flight))
        .sum();
    CoordStats {
        coordinated_users,
        max_possible,
        seated_users,
        total_users: pairs.len() * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights::{build_database, FlightsConfig};

    fn pair(a: &str, b: &str, flight: i64) -> Pair {
        Pair {
            a: a.into(),
            b: b.into(),
            flight,
        }
    }

    #[test]
    fn adjacent_pairs_count() {
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 2,
        };
        let mut db = build_database(&cfg);
        // Pair 1 adjacent on row 1; pair 2 split across rows.
        for (n, s) in [("a1", "1A"), ("b1", "1B"), ("a2", "1C"), ("b2", "2A")] {
            db.insert("Bookings", tuple![n, 1, s]).unwrap();
        }
        let pairs = vec![pair("a1", "b1", 1), pair("a2", "b2", 1)];
        let stats = coordination_stats(&db, &pairs, cfg.rows_per_flight);
        assert_eq!(stats.coordinated_users, 2);
        assert_eq!(stats.max_possible, 4); // min(2·2 pairs, 2·2 rows)
        assert_eq!(stats.seated_users, 4);
        assert_eq!(stats.total_users, 4);
        assert!((stats.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn max_possible_respects_row_bound() {
        // 3 pairs on a 2-row flight: only 2 pairs can be adjacent.
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 2,
        };
        let db = build_database(&cfg);
        let pairs = vec![
            pair("a1", "b1", 1),
            pair("a2", "b2", 1),
            pair("a3", "b3", 1),
        ];
        let stats = coordination_stats(&db, &pairs, cfg.rows_per_flight);
        assert_eq!(stats.max_possible, 4);
        assert_eq!(stats.coordinated_users, 0);
    }

    #[test]
    fn unbooked_users_are_unseated() {
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 1,
        };
        let db = build_database(&cfg);
        let pairs = vec![pair("x", "y", 1)];
        let stats = coordination_stats(&db, &pairs, 1);
        assert_eq!(stats.seated_users, 0);
        assert_eq!(stats.percent(), 0.0);
    }

    #[test]
    fn paper_capacity_example() {
        // "for a single flight with ten rows (10×3 seats), a maximum of
        // twenty coordination requests for adjacent seats can be
        // accommodated"
        let cfg = FlightsConfig {
            flights: 1,
            rows_per_flight: 10,
        };
        let db = build_database(&cfg);
        let pairs: Vec<Pair> = (0..15)
            .map(|i| pair(&format!("a{i}"), &format!("b{i}"), 1))
            .collect();
        let stats = coordination_stats(&db, &pairs, cfg.rows_per_flight);
        assert_eq!(stats.max_possible, 20);
    }
}
