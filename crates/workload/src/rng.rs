//! Small deterministic PRNG with the `rand` call shapes the workloads use.
//!
//! The workload generators only need seeded reproducibility — shuffles and
//! uniform index draws whose sequences are stable per seed — not
//! cryptographic or statistical-suite quality. The external `rand` crate is
//! not vendored in this offline build, so this module provides
//! [`StdRng::seed_from_u64`], [`StdRng::gen_range`] and a
//! [`SliceRandom::shuffle`] extension with the same call syntax,
//! implemented over splitmix64 (Vigna 2015), which passes BigCrush on its
//! 64-bit output stream.
//!
//! Sequences differ from `rand`'s `StdRng` for the same seed; every
//! consumer in this workspace treats the seed as an opaque reproducibility
//! token, so only self-consistency matters.

use std::ops::Range;

/// Seeded splitmix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Construct from a 64-bit seed (same name as `rand::SeedableRng`).
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open range (same name as `rand::Rng`).
    ///
    /// Uses rejection sampling below the largest multiple of the span, so
    /// the draw is exactly uniform. Panics on an empty range, like `rand`.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return range.start + (raw % span) as usize;
            }
        }
    }
}

/// Fisher–Yates shuffling for slices (same call syntax as
/// `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values drawn: {seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
