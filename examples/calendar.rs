//! The §1 calendar scenario: Mickey's team offsite vs the CEO's
//! short-notice meeting.
//!
//! With a quantum database the offsite is *committed* weeks in advance but
//! its concrete slot stays unassigned; when the CEO meeting pins the
//! Friday-afternoon slot, the offsite silently shifts — no rescheduling
//! cascade, no stressed assistant.
//!
//! ```text
//! cargo run --example calendar
//! ```

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::parse_query;
use quantum_db::storage::tuple;
use quantum_db::workload::calendar::{
    install_calendar, schedule_meeting, schedule_pinned, CalendarConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    // One meeting room, five time slots (Mon..Fri afternoon = slot 5).
    install_calendar(&mut qdb, &CalendarConfig { rooms: 1, slots: 5 })?;

    // The team prefers Friday afternoon (slot 5) for the offsite.
    qdb.bulk_insert("Prefers", vec![tuple!["offsite", 5]])?;

    // Two months out: the offsite is committed — but no slot is fixed.
    let out = qdb.submit(&schedule_meeting("offsite"))?;
    println!(
        "offsite scheduled: {out:?}; pending = {}",
        qdb.pending_count()
    );

    // Team members book other meetings through the weeks.
    for (i, name) in ["standup", "review", "retro"].iter().enumerate() {
        let _ = i;
        let out = qdb.submit(&schedule_meeting(name))?;
        println!("{name} scheduled: {out:?}");
    }

    // Wednesday before: the CEO needs Friday afternoon, specifically.
    let out = qdb.submit(&schedule_pinned("ceo", 5))?;
    println!("CEO pins slot 5: {out:?}");

    // Check-in: everyone reads their slot; the schedule collapses.
    qdb.ground_all()?;
    let q = parse_query("Meetings(name, room, slot)")?;
    let rows = qdb.read_parsed(&q, None)?;
    println!("\nfinal schedule:");
    let mut lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  slot {}: {} (room {})",
                r.get(q.var("slot").unwrap()).unwrap(),
                r.get(q.var("name").unwrap()).unwrap(),
                r.get(q.var("room").unwrap()).unwrap(),
            )
        })
        .collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }

    // The CEO meeting holds slot 5; the offsite ended up elsewhere —
    // without any explicit rescheduling step.
    let ceo = qdb.query("Meetings('ceo', r, t)")?;
    assert_eq!(ceo.len(), 1);
    println!("\nno rescheduling was needed: deferred assignment absorbed the conflict");
    Ok(())
}
