//! Quickstart: commit a booking without choosing a seat; observe the
//! collapse on read — all through the unified `execute()` statement API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quantum_db::{QuantumDb, QuantumDbConfig, Response, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Set up a tiny travel database: flight 123 with three seats.
    //    DDL and blind writes are ordinary statements.
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")?;
    qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")?;
    qdb.execute("CREATE INDEX ON Available (flight)")?;
    qdb.execute("INSERT INTO Available VALUES (123, '5A'), (123, '5B'), (123, '5C')")?;

    // 2. Mickey books *a* seat — the resource transaction commits without
    //    fixing which one. The database is now in a quantum state.
    let outcome = qdb.execute(
        "SELECT @s FROM Available(123, @s) CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT ('Mickey', 123, @s) INTO Bookings)",
    )?;
    println!("submit: {outcome}");
    assert!(matches!(outcome, Response::Committed(_)));
    println!("pending: {}", qdb.pending_count());

    // 3. Peek (option 2 of §3.2.2): see one possible world, fix nothing.
    let peek = qdb.execute("SELECT PEEK @s FROM Bookings('Mickey', 123, @s)")?;
    println!(
        "peek sees {} possible booking (not fixed)",
        peek.rows().unwrap().len()
    );

    // 4. Enumerate all possible worlds (option 1).
    let possible = qdb.execute("SELECT POSSIBLE @s FROM Bookings('Mickey', 123, @s)")?;
    println!(
        "{} distinct answers across possible worlds",
        possible.worlds().unwrap().len()
    );

    // 5. Check-in time: the read *collapses* the quantum state (option 3,
    //    the default) — Mickey's seat is now fixed, and repeatable.
    let rows = qdb.execute("SELECT @s FROM Bookings('Mickey', 123, @s)")?;
    let seat = rows.rows().unwrap()[0].iter().next().unwrap().1.clone();
    println!("Mickey's seat after collapse: {seat}");
    assert_eq!(qdb.pending_count(), 0);

    let again = qdb.execute("SELECT @s FROM Bookings('Mickey', 123, @s)")?;
    assert_eq!(rows, again, "reads are repeatable after collapse");

    // 6. Sessions and prepared statements: parse once, run many times.
    let session = qdb.into_shared().session();
    let book = session.prepare(
        "SELECT @s FROM Available(123, @s) CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT (?, 123, @s) INTO Bookings)",
    )?;
    for friend in ["Goofy", "Donald"] {
        let r = book.bind(&[Value::from(friend)])?.run()?;
        println!("{friend}: {r}");
    }
    session.execute("GROUND ALL")?;

    let metrics = session.execute("SHOW METRICS")?;
    println!("metrics: {}", metrics.metrics().unwrap());
    Ok(())
}
