//! Quickstart: commit a booking without choosing a seat; observe the
//! collapse on read.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::{parse_query, parse_transaction};
use quantum_db::storage::{tuple, Schema, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Set up a tiny travel database: flight 123 with three seats.
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))?;
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))?;
    qdb.bulk_insert(
        "Available",
        vec![tuple![123, "5A"], tuple![123, "5B"], tuple![123, "5C"]],
    )?;

    // 2. Mickey books *a* seat — the resource transaction commits without
    //    fixing which one. The database is now in a quantum state.
    let txn = parse_transaction(
        "-Available(f, s), +Bookings('Mickey', f, s) :-1 Available(f, s)",
    )?;
    let outcome = qdb.submit(&txn)?;
    println!("submit: {outcome:?}");
    println!(
        "pending: {}, extensional bookings: {}",
        qdb.pending_count(),
        qdb.database().table("Bookings")?.len()
    );

    // 3. Peek (option 2 of §3.2.2): see one possible world, fix nothing.
    let q = parse_query("Bookings('Mickey', f, s)")?;
    let peek = qdb.read_peek(&q.atoms, None)?;
    println!("peek sees {} possible booking (not fixed)", peek.len());

    // 4. Enumerate all possible worlds (option 1).
    let possible = qdb.read_possible(&q.atoms, 100)?;
    println!("{} distinct answers across possible worlds", possible.len());

    // 5. Check-in time: the read *collapses* the quantum state (option 3,
    //    the default) — Mickey's seat is now fixed, and repeatable.
    let rows = qdb.read_parsed(&q, None)?;
    let seat = rows[0].get(q.var("s").unwrap()).unwrap();
    println!("Mickey's seat after collapse: {seat}");
    assert_eq!(qdb.pending_count(), 0);

    let again = qdb.read_parsed(&q, None)?;
    assert_eq!(rows, again, "reads are repeatable after collapse");
    println!("metrics: {}", qdb.metrics());
    Ok(())
}
