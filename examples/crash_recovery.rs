//! Durability demo: pending resource transactions survive a crash (§4
//! "Recovery").
//!
//! The engine serializes every committed-but-unground transaction into the
//! WAL *before* acknowledging the commit; after a crash, recovery rebuilds
//! both the extensional database and the in-memory quantum state — and the
//! commit guarantee ("your seat will exist") holds across the failure.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use quantum_db::core::{QuantumDb, QuantumDbConfig};
use quantum_db::logic::parse_transaction;
use quantum_db::storage::wal::MemorySink;
use quantum_db::storage::{tuple, Schema, ValueType, Wal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build an engine and commit two deferred bookings.
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))?;
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))?;
    qdb.bulk_insert(
        "Available",
        vec![tuple![1, "1A"], tuple![1, "1B"], tuple![1, "1C"]],
    )?;
    for user in ["Mickey", "Donald"] {
        let t = parse_transaction(&format!(
            "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
        ))?;
        qdb.submit(&t)?;
    }
    println!(
        "before crash: pending = {}, WAL = {} bytes",
        qdb.pending_count(),
        qdb.wal_size()
    );

    // 💥 Crash: all in-memory state is lost; only the log survives. We
    // simulate a torn tail by chopping 3 bytes off the last frame, as if
    // the machine died mid-write.
    let mut image = qdb.wal_image();
    let torn_at = image.len() - 3;
    image.truncate(torn_at);
    drop(qdb);

    // Recovery: replay the log, re-solve the quantum state.
    let wal = Wal::with_sink(Box::new(MemorySink::from_bytes(image)));
    let mut recovered = QuantumDb::recover(wal, QuantumDbConfig::default())?;
    println!(
        "after recovery: pending = {} (the torn record lost Donald's \
         commit acknowledgement — it was never acknowledged, so nothing \
         is lost)",
        recovered.pending_count()
    );

    // The recovered engine honors the surviving commitment.
    let rows = recovered.query("Bookings('Mickey', f, s)")?;
    println!("Mickey's seat after recovery + read: {} row(s)", rows.len());
    assert_eq!(rows.len(), 1);

    // And keeps serving new transactions.
    let t = parse_transaction("-Available(f, s), +Bookings('Daisy', f, s) :-1 Available(f, s)")?;
    let out = recovered.submit(&t)?;
    println!("new booking after recovery: {out:?}");
    Ok(())
}
