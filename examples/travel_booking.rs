//! The paper's running example, end to end: Mickey, Goofy, Donald, Minnie
//! and Pluto book seats on flight 123 — with entangled coordination,
//! possible-worlds inspection (Figure 2) and a hard-constraint conflict
//! (§2's Pluto scenario). Driven through the unified statement API.
//!
//! ```text
//! cargo run --example travel_booking
//! ```

use quantum_db::core::enumerate_worlds;
use quantum_db::logic::parse_transaction;
use quantum_db::storage::tuple;
use quantum_db::{QuantumDb, QuantumDbConfig, Session, Value};

/// Figure 1's entangled booking as a prepared-statement template:
/// `?1` = the booking user, `?2` = the partner they want to sit next to.
const BOOKING_NEXT_TO: &str = "\
    SELECT @f, @s \
    FROM Available(@f, @s), \
         OPTIONAL Bookings(?, @f, @s2), \
         OPTIONAL Adjacent(@s, @s2) \
    CHOOSE 1 \
    FOLLOWED BY ( \
        DELETE (@f, @s) FROM Available; \
        INSERT (?, @f, @s) INTO Bookings; \
    )";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    qdb.execute("CREATE TABLE Available (flight INT, seat TEXT)")?;
    qdb.execute("CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)")?;
    qdb.execute("CREATE TABLE Adjacent (s1 TEXT, s2 TEXT)")?;
    // Flight 123, one row of three seats (Figure 2's setup).
    qdb.execute("INSERT INTO Available VALUES (123, '1A'), (123, '1B'), (123, '1C')")?;
    qdb.execute(
        "INSERT INTO Adjacent VALUES ('1A', '1B'), ('1B', '1A'), ('1B', '1C'), ('1C', '1B')",
    )?;

    // --- Figure 2: possible-world evolution -----------------------------
    println!("--- Figure 2: explicit possible worlds ---");
    let booking = |user: &str| {
        parse_transaction(&format!(
            "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
        ))
        .expect("well-formed")
    };
    let mickey = booking("Mickey");
    let donald = booking("Donald");
    let base = qdb.database().clone();
    let w1 = enumerate_worlds(&base, &[&mickey], 100)?;
    println!("after Mickey's transaction: {} possible worlds", w1.len());
    let w2 = enumerate_worlds(&base, &[&mickey, &donald], 100)?;
    println!("after Donald's transaction: {} possible worlds", w2.len());
    // Minnie wants to sit next to Mickey (hard, for the world count).
    let minnie = parse_transaction(
        "-Available(f, s), +Bookings('Minnie', f, s) :-1 \
         Available(f, s), Bookings('Mickey', f, s2), Adjacent(s, s2)",
    )?;
    let w3 = enumerate_worlds(&base, &[&mickey, &donald, &minnie], 100)?;
    println!(
        "after Minnie's transaction: {} possible worlds (worlds where \
         Minnie cannot sit next to Mickey are eliminated)",
        w3.len()
    );

    // --- Entangled coordination (§5.1) -----------------------------------
    println!("\n--- Entangled resource transactions ---");
    let session: Session = qdb.into_shared().session();
    let book = session.prepare(BOOKING_NEXT_TO)?;
    // Mickey books first, wanting to sit next to Goofy — who is not in the
    // system yet. The request commits; the coordination constraint stays
    // open as a forward constraint.
    book.bind(&[Value::from("Goofy"), Value::from("Mickey")])?
        .run()?;
    let pending = session.shared().pending_count();
    println!("Mickey committed; pending = {pending} (seat not fixed, waiting for Goofy)");
    // Goofy arrives: the pair is grounded immediately, adjacent.
    book.bind(&[Value::from("Mickey"), Value::from("Goofy")])?
        .run()?;
    let rows = session.execute("SELECT * FROM Bookings(@n, @f, @s)")?;
    println!("bookings after Goofy's arrival:");
    let seat_of = |who: &str| -> String {
        rows.rows()
            .unwrap()
            .iter()
            .find_map(|r| {
                let mut name = None;
                let mut seat = None;
                for (var, val) in r.iter() {
                    match var.name() {
                        "n" => name = val.as_str(),
                        "s" => seat = val.as_str(),
                        _ => {}
                    }
                }
                (name == Some(who)).then(|| seat.unwrap().to_string())
            })
            .expect("booked")
    };
    for who in ["Mickey", "Goofy"] {
        println!("  {who} -> {}", seat_of(who));
    }
    let (m, g) = (seat_of("Mickey"), seat_of("Goofy"));
    session.shared().with_database(|db| {
        assert!(db.contains("Adjacent", &tuple![m.as_str(), g.as_str()]));
    });
    println!("Mickey ({m}) and Goofy ({g}) sit together.");

    // --- §2: Pluto's hard constraint vs a soft preference ---------------
    println!("\n--- Hard constraints win over soft preferences ---");
    let last = session.execute("SELECT @f, @s FROM Available(@f, @s)")?;
    println!("seats left: {}", last.rows().unwrap().len());
    // Pluto demands the exact remaining seat — a hard constraint. It
    // commits: nobody pending holds a hard claim on it.
    let out = session.execute(
        "SELECT @s FROM Available(123, @s) WHERE @s = '1C' CHOOSE 1 \
         FOLLOWED BY (DELETE (123, @s) FROM Available; \
                      INSERT ('Pluto', 123, @s) INTO Bookings)",
    )?;
    println!("Pluto requests 1C: {out}");
    session.execute("GROUND ALL")?;
    let taken = session.execute("SELECT * FROM Bookings(@n, @f, @s)")?;
    println!(
        "final bookings: {} of 3 seats taken",
        taken.rows().unwrap().len()
    );
    Ok(())
}
