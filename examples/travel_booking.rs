//! The paper's running example, end to end: Mickey, Goofy, Donald, Minnie
//! and Pluto book seats on flight 123 — with entangled coordination,
//! possible-worlds inspection (Figure 2) and a hard-constraint conflict
//! (§2's Pluto scenario).
//!
//! ```text
//! cargo run --example travel_booking
//! ```

use quantum_db::core::{enumerate_worlds, QuantumDb, QuantumDbConfig};
use quantum_db::logic::{parse_query, parse_transaction, ResourceTransaction};
use quantum_db::storage::{tuple, Schema, ValueType};

fn booking(user: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, s), +Bookings('{user}', f, s) :-1 Available(f, s)"
    ))
    .expect("well-formed")
}

fn booking_next_to(user: &str, partner: &str) -> ResourceTransaction {
    parse_transaction(&format!(
        "-Available(f, s), +Bookings('{user}', f, s) :-1 \
         Available(f, s), Bookings('{partner}', f, s2)?, Adjacent(s, s2)?"
    ))
    .expect("well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qdb = QuantumDb::new(QuantumDbConfig::default())?;
    qdb.create_table(Schema::new(
        "Available",
        vec![("flight", ValueType::Int), ("seat", ValueType::Str)],
    ))?;
    qdb.create_table(Schema::new(
        "Bookings",
        vec![
            ("name", ValueType::Str),
            ("flight", ValueType::Int),
            ("seat", ValueType::Str),
        ],
    ))?;
    qdb.create_table(Schema::new(
        "Adjacent",
        vec![("s1", ValueType::Str), ("s2", ValueType::Str)],
    ))?;
    // Flight 123, one row of three seats (Figure 2's setup).
    qdb.bulk_insert(
        "Available",
        vec![tuple![123, "1A"], tuple![123, "1B"], tuple![123, "1C"]],
    )?;
    qdb.bulk_insert(
        "Adjacent",
        vec![
            tuple!["1A", "1B"],
            tuple!["1B", "1A"],
            tuple!["1B", "1C"],
            tuple!["1C", "1B"],
        ],
    )?;

    // --- Figure 2: possible-world evolution -----------------------------
    println!("--- Figure 2: explicit possible worlds ---");
    let mickey = booking("Mickey");
    let donald = booking("Donald");
    let base = qdb.database().clone();
    let w1 = enumerate_worlds(&base, &[&mickey], 100)?;
    println!("after Mickey's transaction: {} possible worlds", w1.len());
    let w2 = enumerate_worlds(&base, &[&mickey, &donald], 100)?;
    println!("after Donald's transaction: {} possible worlds", w2.len());
    // Minnie wants to sit next to Mickey (hard, for the world count).
    let minnie = parse_transaction(
        "-Available(f, s), +Bookings('Minnie', f, s) :-1 \
         Available(f, s), Bookings('Mickey', f, s2), Adjacent(s, s2)",
    )?;
    let w3 = enumerate_worlds(&base, &[&mickey, &donald, &minnie], 100)?;
    println!(
        "after Minnie's transaction: {} possible worlds (worlds where \
         Minnie cannot sit next to Mickey are eliminated)",
        w3.len()
    );

    // --- Entangled coordination (§5.1) -----------------------------------
    println!("\n--- Entangled resource transactions ---");
    // Mickey books first, wanting to sit next to Goofy — who is not in the
    // system yet. The request commits; the coordination constraint stays
    // open as a forward constraint.
    qdb.submit(&booking_next_to("Mickey", "Goofy"))?;
    println!(
        "Mickey committed; pending = {} (seat not fixed, waiting for Goofy)",
        qdb.pending_count()
    );
    // Goofy arrives: the pair is grounded immediately, adjacent.
    qdb.submit(&booking_next_to("Goofy", "Mickey"))?;
    let q = parse_query("Bookings(n, f, s)")?;
    let rows = qdb.read_parsed(&q, None)?;
    println!("bookings after Goofy's arrival:");
    for r in &rows {
        let n = r.get(q.var("n").unwrap()).unwrap();
        let s = r.get(q.var("s").unwrap()).unwrap();
        println!("  {n} -> {s}");
    }
    let seat = |rows: &Vec<quantum_db::logic::Valuation>, who: &str| -> String {
        rows.iter()
            .find(|r| r.get(q.var("n").unwrap()).unwrap().as_str() == Some(who))
            .and_then(|r| r.get(q.var("s").unwrap()).unwrap().as_str().map(String::from))
            .expect("booked")
    };
    let (m, g) = (seat(&rows, "Mickey"), seat(&rows, "Goofy"));
    assert!(qdb
        .database()
        .contains("Adjacent", &tuple![m.as_str(), g.as_str()]));
    println!("Mickey ({m}) and Goofy ({g}) sit together.");

    // --- §2: Pluto's hard constraint vs a soft preference ---------------
    println!("\n--- Hard constraints win over soft preferences ---");
    let last = qdb.query("Available(f, s)")?;
    println!("seats left: {}", last.len());
    // Pluto demands the exact remaining seat — a hard constraint. It
    // commits: nobody pending holds a hard claim on it.
    let pluto = parse_transaction(
        "-Available(123, '1C'), +Bookings('Pluto', 123, '1C') :-1 Available(123, '1C')",
    );
    let pluto = pluto?;
    let out = qdb.submit(&pluto)?;
    println!("Pluto requests 1C: {out:?}");
    qdb.ground_all()?;
    println!(
        "final bookings: {} of 3 seats taken",
        qdb.database().table("Bookings")?.len()
    );
    Ok(())
}
