//! The §2 entangled booking scenario over the network: a `qdb-server`
//! owning the engine, Mickey and Goofy as two remote clients.
//!
//! ```text
//! cargo run --example remote_booking
//! ```

use quantum_db::client::Connection;
use quantum_db::server::{Server, ServerConfig};
use quantum_db::{Response, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server on a free loopback port, owning a fresh engine.
    let server = Server::spawn(&ServerConfig::default())?;
    println!("server on {}", server.addr());

    // An operator connection installs the schema and seats.
    let mut admin = Connection::connect(server.addr())?;
    for result in admin.pipeline(&[
        "CREATE TABLE Available (flight INT, seat TEXT)",
        "CREATE TABLE Bookings (name TEXT, flight INT, seat TEXT)",
        "CREATE TABLE Adjacent (a TEXT, b TEXT)",
        "INSERT INTO Available VALUES (123, '5A'), (123, '5B'), (123, '5C')",
        "INSERT INTO Adjacent VALUES ('5A', '5B'), ('5B', '5C')",
    ])? {
        result?;
    }

    // Mickey and Goofy each hold their own connection and book "a seat,
    // preferably next to my friend" — without choosing which.
    let booking = "SELECT @s FROM Available(123, @s), \
                   OPTIONAL Bookings(?, 123, @s2), OPTIONAL Adjacent(@s, @s2) \
                   CHOOSE 1 \
                   FOLLOWED BY (DELETE (123, @s) FROM Available; \
                                INSERT (?, 123, @s) INTO Bookings)";
    for (user, friend) in [("Mickey", "Goofy"), ("Goofy", "Mickey")] {
        let mut conn = Connection::connect(server.addr())?;
        let prepared = conn.prepare(booking)?;
        let response = conn.bind_run(&prepared, &[Value::from(friend), Value::from(user)])?;
        println!("{user}: {response}");
        assert!(matches!(response, Response::Committed(_)));
        // After Mickey's commit nothing is fixed yet — the database is in
        // a quantum state. (Goofy's arrival completes the coordination
        // pair, which grounds both under the default §5.1 policy.)
        let pending = admin.execute("SHOW PENDING")?;
        println!("  after {user}'s booking: {pending}");
    }

    // Both friends hold committed bookings; the reads observe the
    // coordinated outcome — adjacent seats.
    let mut mickey = Connection::connect(server.addr())?;
    let rows = mickey.execute("SELECT @s FROM Bookings('Mickey', 123, @s)")?;
    let goofy_rows = mickey.execute("SELECT @s FROM Bookings('Goofy', 123, @s)")?;
    println!(
        "after the read: Mickey {} seat(s), Goofy {} seat(s)",
        rows.rows().unwrap().len(),
        goofy_rows.rows().unwrap().len()
    );
    assert_eq!(rows.rows().unwrap().len(), 1);
    assert_eq!(goofy_rows.rows().unwrap().len(), 1);

    // The SHOW METRICS response carries the server's traffic counters too.
    let (engine, wire) = admin.server_stats()?;
    println!("engine: {engine}");
    println!("server: {wire}");

    server.shutdown();
    Ok(())
}
